package prune

import (
	"context"
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/core"
)

// FuzzProgressiveNearest drives the engine through degenerate problem
// shapes — one candidate, tile == table (every index skipped), tiny k,
// duplicated candidates (exact ties), all-zero lanes — and asserts the
// load-bearing invariants: never panic, the exact margin is bit-equal
// to the full scan, results are worker-count invariant, and with no
// screen eliminations the confidence margin can never answer worse
// than the screen admits (i.e. it matches the exact scan).
func FuzzProgressiveNearest(f *testing.F) {
	f.Add(uint64(1), 8, 9, 2, 3, 4, 0.1, 0.05)
	f.Add(uint64(2), 1, 1, 1, 1, 1, 0.0, 0.5)     // single candidate, k=1
	f.Add(uint64(3), 2, 3, 4, 4, 1, 2.0, 0.001)   // tiny chunk
	f.Add(uint64(4), 33, 17, 3, 2, 16, 0.3, 0.01) // chunked multi-round
	f.Add(uint64(5), 5, 64, 1, 1, 8, 0.05, 0.9)   // 1x1 tiles, sketch >> table
	f.Fuzz(func(t *testing.T, seed uint64, n, k, rows, cols, chunk int, epsilon, delta float64) {
		n = clampInt(n, 1, 48)
		k = clampInt(k, 1, 80)
		rows = clampInt(rows, 1, 8)
		cols = clampInt(cols, 1, 8)
		chunk = clampInt(chunk, 1, 24)
		if !(epsilon >= 0) || epsilon > 8 {
			epsilon = 0.1
		}
		if !(delta > 0) || delta >= 1 {
			delta = 0.05
		}
		rng := rand.New(rand.NewPCG(seed, 0xF022))
		p := []float64{0.5, 1, 2}[seed%3]
		dim := rows * cols

		q := fuzzVec(rng, dim, false)
		cands := make([][]float64, n)
		for i := range cands {
			switch {
			case i > 0 && rng.IntN(4) == 0:
				cands[i] = cands[rng.IntN(i)] // exact tie
			case rng.IntN(6) == 0:
				cands[i] = make([]float64, dim) // all-zero candidate
			case rng.IntN(6) == 0:
				cands[i] = append([]float64(nil), q...) // distance zero
			default:
				cands[i] = fuzzVec(rng, dim, rng.IntN(8) == 0)
			}
		}
		skip := -1
		if rng.IntN(3) == 0 {
			skip = rng.IntN(n) // sometimes the query IS a candidate tile
		}
		src := vecSource(t, p, k, rows, cols, seed^0xA5A5, q, cands, skip)
		wantIdx, wantSum := fullScan(src)

		// Exact margin at two worker counts: bit-equal to the full scan
		// (or the same no-candidate failure), equal to each other.
		cfg := Config{Chunk: chunk, Workers: 1, ScreenLanes: 1 + int(seed%5)}
		idx1, sum1, st1, err1 := Nearest(context.Background(), src, cfg)
		cfg.Workers = 2 + int(seed%3)
		idx2, sum2, st2, err2 := Nearest(context.Background(), src, cfg)
		if wantIdx < 0 {
			if err1 != ErrNoCandidates || err2 != ErrNoCandidates {
				t.Fatalf("degenerate problem: want ErrNoCandidates, got %v / %v", err1, err2)
			}
			return
		}
		if err1 != nil || err2 != nil {
			t.Fatalf("exact margin errored: %v / %v", err1, err2)
		}
		if idx1 != wantIdx || math.Float64bits(sum1) != math.Float64bits(wantSum) {
			t.Fatalf("exact margin (%d, %x) != full scan (%d, %x)",
				idx1, math.Float64bits(sum1), wantIdx, math.Float64bits(wantSum))
		}
		if idx2 != idx1 || math.Float64bits(sum2) != math.Float64bits(sum1) || st1 != st2 {
			t.Fatalf("workers changed the answer: (%d, %v, %+v) vs (%d, %v, %+v)",
				idx1, sum1, st1, idx2, sum2, st2)
		}
		checkStats(t, st1, src, k)

		// Confidence margin: never panic, answer self-consistent, and
		// when the screen pruned nothing the answer must equal the exact
		// scan (the refinement is lossless on whatever the screen admits).
		plan, err := NewPlan(p, k, core.EstimatorAuto, 1+int(seed%7), delta)
		if err != nil {
			t.Fatalf("NewPlan: %v", err)
		}
		cfg = Config{Plan: plan, Epsilon: epsilon, Chunk: chunk, Workers: 1}
		idx, sum, st, err := Nearest(context.Background(), src, cfg)
		if err != nil {
			// The minimum-estimate candidate always survives its own
			// reference band, so the screen can never empty the field.
			t.Fatalf("confidence margin errored: %v", err)
		}
		if idx < 0 || idx >= n || idx == skip {
			t.Fatalf("confidence margin returned invalid index %d (n=%d skip=%d)", idx, n, skip)
		}
		var exact float64
		for r := 0; r < rows; r++ {
			exact += src.RowPowSum(idx, r)
		}
		if math.Float64bits(sum) != math.Float64bits(exact) {
			t.Fatalf("returned sum %x is not candidate %d's exact sum %x",
				math.Float64bits(sum), idx, math.Float64bits(exact))
		}
		if st.PrunedCandidates == 0 && (idx != wantIdx || math.Float64bits(sum) != math.Float64bits(wantSum)) {
			t.Fatalf("no candidate pruned, yet (%d, %x) != exact (%d, %x)",
				idx, math.Float64bits(sum), wantIdx, math.Float64bits(wantSum))
		}
		checkStats(t, st, src, k)
	})
}

func checkStats(t *testing.T, st Stats, src Source, k int) {
	t.Helper()
	wantCands := src.N
	if src.Skip >= 0 && src.Skip < src.N {
		wantCands--
	}
	if st.Candidates != wantCands {
		t.Fatalf("Candidates = %d, want %d", st.Candidates, wantCands)
	}
	if st.ScreenSurvivors+st.PrunedCandidates != st.Candidates {
		t.Fatalf("survivors %d + pruned %d != candidates %d",
			st.ScreenSurvivors, st.PrunedCandidates, st.Candidates)
	}
	if st.LanesEvaluated < 0 || st.LanesEvaluated > int64(st.Candidates)*int64(k) {
		t.Fatalf("LanesEvaluated %d outside [0, %d]", st.LanesEvaluated, int64(st.Candidates)*int64(k))
	}
	cells := int64(st.Candidates) * int64(src.Rows) * int64(src.Cols)
	if st.CellsEvaluated < 0 || st.CellsEvaluated > cells {
		t.Fatalf("CellsEvaluated %d outside [0, %d]", st.CellsEvaluated, cells)
	}
	if st.CoordinatesTotal != cells {
		t.Fatalf("CoordinatesTotal %d != %d", st.CoordinatesTotal, cells)
	}
	if st.PrunedCoordinates() < 0 || st.CoordinatesEvaluated() != st.LanesEvaluated+st.CellsEvaluated {
		t.Fatalf("inconsistent derived stats: %+v", st)
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// fuzzVec draws a candidate vector, optionally with huge-magnitude
// entries to stress the estimator's dynamic range.
func fuzzVec(rng *rand.Rand, dim int, huge bool) []float64 {
	v := make([]float64, dim)
	for i := range v {
		v[i] = rng.Float64()*4 - 2
		if huge {
			v[i] *= 1e12
		}
	}
	return v
}
