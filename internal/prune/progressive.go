package prune

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/quantile"
)

// Source describes one nearest-candidate problem: N candidates, each
// with a precomputed k-lane sketch and an exact row-power-sum accessor.
// The engine never mutates anything reachable from a Source, so a Source
// over immutable snapshot state is safe for concurrent queries.
type Source struct {
	// K is the sketch size; QSketch and every Sketch(i) have length K.
	K int
	// N is the number of candidates.
	N int
	// QSketch is the query's sketch (e.g. the pool's compound sketch).
	QSketch []float64
	// Sketch returns candidate i's sketch. Must be pure.
	Sketch func(i int) []float64
	// CompoundSlack is the worst-case multiplicative overcount of the
	// sketch estimate relative to the TRUE Lp distance: 1 when every
	// sketch is an exact dyadic sketch (Theorem 1/2 band), 4 when
	// compound sketches are involved (Theorem 5 counts each cell with
	// multiplicity ≤ 4, and (Σm^p|d|^p)^(1/p) ≤ 4·(Σ|d|^p)^(1/p) for any
	// p > 0). Values < 1 are treated as 1.
	CompoundSlack float64
	// Rows and Cols are the candidate rectangle extents; the exact
	// refinement evaluates Rows row power sums of Cols cells each.
	Rows, Cols int
	// RowPowSum returns Σ|a−b|^p over row r of candidate i against the
	// query — the same quantity the full scan accumulates, in the same
	// order, so completed refinements are bit-identical to it.
	RowPowSum func(i, r int) float64
	// Estimator selects the partial-estimate flavor; must match how the
	// sketches were built (core.EstimatorAuto resolves by P).
	Estimator core.Estimator
	// Scale is B(p) for the median estimator (ignored for L2).
	Scale float64
	// Skip is a candidate index excluded from the scan (the query's own
	// tile in a nearest query); -1 skips nothing.
	Skip int
}

// Config tunes one progressive search.
type Config struct {
	// Plan enables the confidence margin; nil selects the exact margin
	// (screen orders only, refinement is provably lossless).
	Plan *Plan
	// Epsilon is extra headroom on the confidence screen band: survivors
	// are the candidates not certified farther than (1+Epsilon)× the
	// best estimate's certified distance band. 0 is valid (tightest
	// screen the confidence level allows).
	Epsilon float64
	// Workers bounds the fan-out inside each chunk. Any value produces
	// identical results and statistics; 0 means GOMAXPROCS.
	Workers int
	// Chunk is the candidate chunk size; cutoff references advance only
	// at chunk boundaries, which is what makes the scan deterministic
	// under parallelism. 0 selects 32.
	Chunk int
	// ScreenLanes is how many sketch lanes the EXACT margin evaluates
	// per candidate for its ordering estimate (the order affects only
	// speed, never the answer). 0 selects min(K, 16).
	ScreenLanes int
}

// Stats reports what one progressive search evaluated and avoided. All
// fields are deterministic functions of (Source, Config).
type Stats struct {
	// Candidates is how many candidates entered the screen (N minus the
	// skipped index, when present).
	Candidates int
	// ScreenSurvivors is how many candidates reached exact refinement.
	ScreenSurvivors int
	// PrunedCandidates is how many the confidence screen eliminated
	// (always 0 under the exact margin).
	PrunedCandidates int
	// RefineAbandoned is how many survivors the exact partial-sum cutoff
	// abandoned before their last row.
	RefineAbandoned int
	// LanesEvaluated counts sketch coordinates consumed by the screen.
	LanesEvaluated int64
	// CellsEvaluated counts table cells consumed by exact refinement
	// (rows evaluated × Cols).
	CellsEvaluated int64
	// CoordinatesTotal is the full-scan coordinate cost of the same
	// query: Candidates × Rows × Cols exact cells.
	CoordinatesTotal int64
}

// CoordinatesEvaluated is the progressive scan's total coordinate cost:
// sketch lanes plus exact cells.
func (st Stats) CoordinatesEvaluated() int64 {
	return st.LanesEvaluated + st.CellsEvaluated
}

// PrunedCoordinates is how many full-scan coordinates the progressive
// scan avoided (clamped at 0: a degenerate problem can cost more in
// lanes than the scan it replaces).
func (st Stats) PrunedCoordinates() int64 {
	if p := st.CoordinatesTotal - st.CoordinatesEvaluated(); p > 0 {
		return p
	}
	return 0
}

// ErrNoCandidates is returned when no candidate completes refinement —
// every index was skipped, or every exact distance was NaN (the full
// scan's argmin fails identically).
var ErrNoCandidates = errors.New("prune: no candidate survives the scan")

// screenSlot is one candidate's screen outcome (disjoint per-candidate
// slot: workers never share).
type screenSlot struct {
	est    float64
	lanes  int
	pruned bool
	in     bool // participated (not the skipped index)
}

// Nearest runs the coarse-to-fine progressive search and returns the
// winning candidate index and its exact Lp power sum (Σ|a−b|^p; callers
// apply the final 1/p power). Under the exact margin the result is
// bit-identical to the full scan's lowest-index argmin, including tie
// handling. ctx cancels between chunks.
func Nearest(ctx context.Context, src Source, cfg Config) (int, float64, Stats, error) {
	if err := src.validate(); err != nil {
		return 0, 0, Stats{}, err
	}
	est := src.Estimator
	if est == core.EstimatorAuto {
		if cfg.Plan != nil {
			est = cfg.Plan.Estimator()
		} else if src.Scale > 0 {
			est = core.EstimatorMedian
		} else {
			est = core.EstimatorL2
		}
	}
	if est == core.EstimatorMedian && !(src.Scale > 0) {
		return 0, 0, Stats{}, fmt.Errorf("prune: median estimator needs a positive Scale, got %v", src.Scale)
	}
	if cfg.Plan != nil {
		if cfg.Plan.K() != src.K {
			return 0, 0, Stats{}, fmt.Errorf("prune: plan k=%d, source k=%d", cfg.Plan.K(), src.K)
		}
		if cfg.Plan.Estimator() != est {
			return 0, 0, Stats{}, fmt.Errorf("prune: plan estimator %v, source estimator %v", cfg.Plan.Estimator(), est)
		}
	}
	if !(cfg.Epsilon >= 0) {
		return 0, 0, Stats{}, fmt.Errorf("prune: epsilon %v must be ≥ 0", cfg.Epsilon)
	}
	chunk := cfg.Chunk
	if chunk <= 0 {
		chunk = 32
	}
	workers := parallel.Resolve(cfg.Workers)
	slack := src.CompoundSlack
	if !(slack > 1) {
		slack = 1
	}
	screenLanes := cfg.ScreenLanes
	if screenLanes <= 0 {
		screenLanes = 16
	}
	if screenLanes > src.K {
		screenLanes = src.K
	}

	var stats Stats

	// ---- Screen: progressive sketch estimates, chunked. All working
	// memory (per-candidate slots, per-chunk-position diff/work buffers
	// — each position is owned by exactly one candidate at a time —,
	// the survivor list, and the refinement slots) is recycled through
	// the package scratch pool, so a steady-state search allocates O(1).
	sc := getScratch(src.N, src.K, max(min(chunk, src.N), 1))
	defer putScratch(sc)
	slots := sc.slots
	diffsBuf, workBuf := sc.diffs, sc.work
	bestEst := math.Inf(1)
	for lo := 0; lo < src.N; lo += chunk {
		hi := min(lo+chunk, src.N)
		ref := math.Inf(1)
		if cfg.Plan != nil {
			ref = cfg.Plan.pruneRef(bestEst, cfg.Epsilon, slack)
		}
		if err := parallel.ForCtx(ctx, workers, hi-lo, func(n int) {
			i := lo + n
			if i == src.Skip {
				return
			}
			sl := &slots[i]
			sl.in = true
			if cfg.Plan != nil {
				sl.est, sl.lanes, sl.pruned = screenConfidence(
					src, cfg.Plan, est, ref, i, diffsBuf[n], workBuf[n])
			} else {
				sl.est, sl.lanes = screenOrder(src, est, screenLanes, i, diffsBuf[n], workBuf[n])
			}
		}); err != nil {
			return 0, 0, stats, err
		}
		// Serial merge in index order: the reference for the NEXT chunk.
		for i := lo; i < hi; i++ {
			sl := &slots[i]
			if !sl.in {
				continue
			}
			stats.Candidates++
			stats.LanesEvaluated += int64(sl.lanes)
			if !sl.pruned && sl.est < bestEst {
				bestEst = sl.est
			}
		}
	}
	stats.CoordinatesTotal = int64(stats.Candidates) * int64(src.Rows) * int64(src.Cols)

	// Survivor filter: candidates that completed the screen early (when
	// the reference was still loose) are re-tested against the final
	// reference, at the final checkpoint's certified level.
	survivors := sc.survivors
	if cfg.Plan != nil {
		finalRef := cfg.Plan.pruneRef(bestEst, cfg.Epsilon, slack)
		hiK := cfg.Plan.hi[len(cfg.Plan.hi)-1]
		for i := range slots {
			sl := &slots[i]
			if !sl.in || sl.pruned {
				continue
			}
			if !math.IsInf(finalRef, 1) && sl.est > hiK*finalRef {
				sl.pruned = true
				continue
			}
			survivors = append(survivors, i)
		}
		stats.PrunedCandidates = stats.Candidates - len(survivors)
	} else {
		for i := range slots {
			if slots[i].in {
				survivors = append(survivors, i)
			}
		}
	}
	stats.ScreenSurvivors = len(survivors)

	// Refine in estimated-nearest-first order, so the best exact
	// distance lands early and the partial-sum cutoff bites hard. NaN
	// estimates order last (they certify nothing).
	sc.survivors = survivors
	sc.sortSurvivors()

	// ---- Refine: exact distances with the sound monotone cutoff.
	bestIdx, bestSum := -1, math.Inf(1)
	ref := sc.ref
	for lo := 0; lo < len(survivors); lo += chunk {
		hi := min(lo+chunk, len(survivors))
		bound := bestSum
		if err := parallel.ForCtx(ctx, workers, hi-lo, func(n int) {
			i := survivors[lo+n]
			var sum float64
			r := 0
			abandoned := false
			for ; r < src.Rows; r++ {
				sum += src.RowPowSum(i, r)
				if sum > bound {
					// Monotone partial sums: this candidate's final sum is
					// strictly above a completed competitor's — it can never
					// be the argmin, even on ties.
					r++
					abandoned = true
					break
				}
			}
			ref[n] = refSlot{sum: sum, rows: r, abandoned: abandoned}
		}); err != nil {
			return 0, 0, stats, err
		}
		for n := lo; n < hi; n++ {
			rs := ref[n-lo]
			i := survivors[n]
			stats.CellsEvaluated += int64(rs.rows) * int64(src.Cols)
			if rs.abandoned {
				stats.RefineAbandoned++
				continue
			}
			// Full-scan argmin semantics: strict improvement, or an
			// equal sum at a lower index (merge order is irrelevant
			// under this rule).
			if rs.sum < bestSum || (rs.sum == bestSum && i < bestIdx) {
				bestSum, bestIdx = rs.sum, i
			}
		}
	}
	if bestIdx < 0 {
		return 0, 0, stats, ErrNoCandidates
	}
	return bestIdx, bestSum, stats, nil
}

func (src *Source) validate() error {
	if src.N < 0 || src.K < 1 {
		return fmt.Errorf("prune: invalid source N=%d k=%d", src.N, src.K)
	}
	if len(src.QSketch) != src.K {
		return fmt.Errorf("prune: query sketch length %d != k=%d", len(src.QSketch), src.K)
	}
	if src.Rows < 0 || src.Cols < 0 {
		return fmt.Errorf("prune: negative extents %dx%d", src.Rows, src.Cols)
	}
	if src.N > 0 && (src.Sketch == nil || src.RowPowSum == nil) {
		return fmt.Errorf("prune: nil Sketch or RowPowSum accessor")
	}
	return nil
}

// screenConfidence evaluates candidate i's sketch lanes block by block,
// testing the partial estimate against the Chernoff threshold at every
// checkpoint. It returns the last estimate computed, the lanes
// consumed, and whether the candidate was certified prunable.
func screenConfidence(src Source, plan *Plan, est core.Estimator, ref float64, i int, diffs, work []float64) (float64, int, bool) {
	sk := src.Sketch(i)
	var sumsq float64
	e := math.NaN()
	prev := 0
	for j, b := range plan.checkpoints {
		switch est {
		case core.EstimatorL2:
			for l := prev; l < b; l++ {
				d := src.QSketch[l] - sk[l]
				sumsq += d * d
			}
		default:
			for l := prev; l < b; l++ {
				diffs[l] = math.Abs(src.QSketch[l] - sk[l])
			}
		}
		prev = b
		// With no finite reference yet (first chunk, or a degenerate
		// plan) intermediate estimates decide nothing — skip their
		// selection cost and estimate once at the full k.
		if math.IsInf(ref, 1) && b != src.K {
			continue
		}
		if est == core.EstimatorL2 {
			e = math.Sqrt(sumsq / float64(b))
		} else {
			copy(work[:b], diffs[:b])
			e = quantile.Median(work[:b]) / src.Scale
		}
		if e > plan.hi[j]*ref {
			return e, b, true
		}
	}
	return e, src.K, false
}

// screenOrder is the exact-margin screen: a fixed-prefix estimate used
// only to order refinement (never to eliminate).
func screenOrder(src Source, est core.Estimator, lanes, i int, diffs, work []float64) (float64, int) {
	sk := src.Sketch(i)
	switch est {
	case core.EstimatorL2:
		var sumsq float64
		for l := 0; l < lanes; l++ {
			d := src.QSketch[l] - sk[l]
			sumsq += d * d
		}
		return math.Sqrt(sumsq / float64(lanes)), lanes
	default:
		for l := 0; l < lanes; l++ {
			diffs[l] = math.Abs(src.QSketch[l] - sk[l])
		}
		copy(work[:lanes], diffs[:lanes])
		return quantile.Median(work[:lanes]) / src.Scale, lanes
	}
}
