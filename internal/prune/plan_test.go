package prune

import (
	"math"
	"testing"

	"repro/internal/core"
)

func TestPlanThresholdsShrinkWithPrefix(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    float64
		est  core.Estimator
	}{
		{"median_p1", 1, core.EstimatorMedian},
		{"median_p0.5", 0.5, core.EstimatorMedian},
		{"l2", 2, core.EstimatorL2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pl, err := NewPlan(tc.p, 256, tc.est, 32, 0.05)
			if err != nil {
				t.Fatal(err)
			}
			cps := pl.Checkpoints()
			if got := cps[len(cps)-1]; got != 256 {
				t.Fatalf("last checkpoint %d, want k=256", got)
			}
			prev := math.Inf(1)
			for j := range cps {
				hi := pl.HiAt(j)
				if !(hi >= 1) {
					t.Errorf("checkpoint %d: hi = %v < 1 (estimator must be allowed its own mean)", cps[j], hi)
				}
				if hi > prev {
					t.Errorf("checkpoint %d: hi = %v grew from %v; more evidence must not loosen the cutoff", cps[j], hi, prev)
				}
				prev = hi
			}
			if lo := pl.LoK(); !(lo > 0 && lo < 1) {
				t.Errorf("LoK = %v, want in (0, 1) for k=256", lo)
			}
		})
	}
}

func TestPlanTinyPrefixIsDegenerate(t *testing.T) {
	// One coordinate certifies nothing at delta = 0.05: gammaReq > ½.
	pl, err := NewPlan(1, 2, core.EstimatorMedian, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if hi := pl.HiAt(0); !math.IsInf(hi, 1) {
		t.Errorf("hi at prefix 1 = %v, want +Inf (too little evidence)", hi)
	}
	if !pl.degenerate() {
		t.Error("plan with k=2 at delta=0.05 should be degenerate (never eliminates)")
	}
	if ref := pl.pruneRef(1.0, 0.1, 1); !math.IsInf(ref, 1) {
		t.Errorf("degenerate plan pruneRef = %v, want +Inf", ref)
	}
}

func TestPlanErrors(t *testing.T) {
	cases := []struct {
		p     float64
		k     int
		est   core.Estimator
		delta float64
	}{
		{1, 0, core.EstimatorMedian, 0.05}, // k < 1
		{1, 8, core.EstimatorMedian, 0},    // delta out of range
		{1, 8, core.EstimatorMedian, 1},
		{0.2, 8, core.EstimatorMedian, 0.05}, // below the analytic CDF range
		{1, 8, core.EstimatorL2, 0.05},       // L2 needs p = 2
	}
	for _, tc := range cases {
		if _, err := NewPlan(tc.p, tc.k, tc.est, 0, tc.delta); err == nil {
			t.Errorf("NewPlan(p=%v, k=%d, est=%v, delta=%v): want error", tc.p, tc.k, tc.est, tc.delta)
		}
	}
}

// The prefix bounds are the inverse of KForAccuracyAtP: a sketch sized
// for (ε, δ) must certify, at its own full length, a deviation factor
// no looser than 1+ε.
func TestPrefixBoundsInvertKForAccuracy(t *testing.T) {
	for _, p := range []float64{0.5, 1, 1.5} {
		const eps, delta = 0.25, 0.05
		k, err := core.KForAccuracyAtP(p, eps, delta)
		if err != nil {
			t.Fatal(err)
		}
		_, hi, err := core.MedianPrefixBounds(p, k, delta)
		if err != nil {
			t.Fatal(err)
		}
		if hi > 1+eps+1e-9 {
			t.Errorf("p=%v: k=%d sized for ε=%v certifies only hi=%v", p, k, eps, hi)
		}
	}
}

func TestL2PrefixBoundsBracketOne(t *testing.T) {
	lo, hi, err := core.L2PrefixBounds(128, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo > 0 && lo < 1 && hi > 1 && !math.IsInf(hi, 1)) {
		t.Fatalf("L2PrefixBounds(128, 0.01) = (%v, %v), want 0 < lo < 1 < hi < Inf", lo, hi)
	}
	// More evidence tightens both sides.
	lo2, hi2, err := core.L2PrefixBounds(512, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo2 > lo && hi2 < hi) {
		t.Errorf("bounds did not tighten: b=128 (%v, %v) vs b=512 (%v, %v)", lo, hi, lo2, hi2)
	}
}

func TestDefaultBlock(t *testing.T) {
	if b := DefaultBlock(4); b != 8 {
		t.Errorf("DefaultBlock(4) = %d, want floor 8", b)
	}
	if b := DefaultBlock(256); b != 32 {
		t.Errorf("DefaultBlock(256) = %d, want 32", b)
	}
}
