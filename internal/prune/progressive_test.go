package prune

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/core"
	"repro/internal/lpnorm"
)

// vecSource builds a Source over explicit candidate vectors: real
// sketches from a core.Sketcher, exact row power sums from the vectors.
// It is the engine-level test harness (the server-level tests exercise
// the same engine through pool sketches and snapshots).
func vecSource(t testing.TB, p float64, k, rows, cols int, seed uint64, q []float64, cands [][]float64, skip int) Source {
	t.Helper()
	sk, err := core.NewSketcher(p, k, rows, cols, seed, core.EstimatorAuto)
	if err != nil {
		t.Fatal(err)
	}
	lp := lpnorm.MustP(p)
	qsk := sk.Sketch(q, nil)
	sketches := make([][]float64, len(cands))
	for i, c := range cands {
		sketches[i] = sk.Sketch(c, nil)
	}
	return Source{
		K: k, N: len(cands), QSketch: qsk,
		Sketch:        func(i int) []float64 { return sketches[i] },
		CompoundSlack: 1,
		Rows:          rows, Cols: cols,
		RowPowSum: func(i, r int) float64 {
			return lp.DistPowSum(cands[i][r*cols:(r+1)*cols], q[r*cols:(r+1)*cols])
		},
		Estimator: sk.EstimatorKind(), Scale: sk.Scale(),
		Skip: skip,
	}
}

// fullScan mirrors the reference semantics of Snapshot.ExactNearest:
// serial row-sum per candidate, strict-< argmin, lowest index on ties.
func fullScan(src Source) (int, float64) {
	best, bestSum := -1, math.Inf(1)
	for i := 0; i < src.N; i++ {
		if i == src.Skip {
			continue
		}
		var sum float64
		for r := 0; r < src.Rows; r++ {
			sum += src.RowPowSum(i, r)
		}
		if sum < bestSum {
			best, bestSum = i, sum
		}
	}
	return best, bestSum
}

// The exact margin is lossless by construction: across random problems —
// including exact ties from duplicated candidates — the progressive scan
// must return the bit-identical (index, power sum) of the full scan at
// every worker count, and its statistics must not depend on workers.
func TestExactMarginMatchesFullScanProperty(t *testing.T) {
	workersList := []int{1, 2, 0} // 0 = GOMAXPROCS
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewPCG(0xE0A0, uint64(trial)))
		p := []float64{0.5, 1, 2}[trial%3]
		rows, cols := 2+rng.IntN(4), 2+rng.IntN(4)
		dim := rows * cols
		k := 1 + rng.IntN(40)
		n := 1 + rng.IntN(50)
		q := randVec(rng, dim)
		cands := make([][]float64, n)
		for i := range cands {
			switch {
			case i > 0 && rng.IntN(4) == 0:
				// Duplicate an earlier candidate: exact distance ties.
				cands[i] = cands[rng.IntN(i)]
			case rng.IntN(8) == 0:
				cands[i] = make([]float64, dim) // all-zero candidate
			default:
				cands[i] = randVec(rng, dim)
			}
		}
		skip := -1
		if rng.IntN(3) == 0 {
			skip = rng.IntN(n)
		}
		src := vecSource(t, p, k, rows, cols, 0xBEEF+uint64(trial), q, cands, skip)
		wantIdx, wantSum := fullScan(src)
		chunk := 1 + rng.IntN(8)

		var refStats *Stats
		for _, workers := range workersList {
			cfg := Config{Workers: workers, Chunk: chunk}
			gotIdx, gotSum, stats, err := Nearest(context.Background(), src, cfg)
			if wantIdx < 0 {
				if err != ErrNoCandidates {
					t.Fatalf("trial %d: want ErrNoCandidates, got idx=%d err=%v", trial, gotIdx, err)
				}
				continue
			}
			if err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, workers, err)
			}
			if gotIdx != wantIdx || math.Float64bits(gotSum) != math.Float64bits(wantSum) {
				t.Fatalf("trial %d workers=%d: got (%d, %x), full scan (%d, %x)",
					trial, workers, gotIdx, math.Float64bits(gotSum), wantIdx, math.Float64bits(wantSum))
			}
			if refStats == nil {
				s := stats
				refStats = &s
			} else if *refStats != stats {
				t.Fatalf("trial %d workers=%d: stats %+v differ from workers=%d stats %+v",
					trial, workers, stats, workersList[0], *refStats)
			}
		}
	}
}

// On well-separated data the confidence margin must both prune hard and
// still return the true nearest, and its statistics must also be
// worker-count invariant.
func TestConfidenceMarginPrunesAndFindsNearest(t *testing.T) {
	// Tiles must be meaningfully bigger than the sketch for coordinate
	// savings to exist at all: 256 cells vs 65 lanes, the paper's regime.
	const (
		p          = 1.0
		rows, cols = 16, 16
		dim        = rows * cols
		k          = 65
		n          = 96
	)
	rng := rand.New(rand.NewPCG(0xC0FF, 1))
	q := randVec(rng, dim)
	cands := make([][]float64, n)
	for i := range cands {
		v := make([]float64, dim)
		if i%16 == 3 {
			// Near cluster: q plus small noise.
			for j := range v {
				v[j] = q[j] + 0.05*rng.NormFloat64()
			}
		} else {
			// Far: independent content at a large offset.
			for j := range v {
				v[j] = 10 + 4*rng.NormFloat64()
			}
		}
		cands[i] = v
	}
	src := vecSource(t, p, k, rows, cols, 0xF00D, q, cands, -1)
	wantIdx, wantSum := fullScan(src)

	plan, err := NewPlan(p, k, core.EstimatorMedian, 0, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	var refStats *Stats
	for _, workers := range []int{1, 3, 0} {
		idx, sum, stats, err := Nearest(context.Background(), src, Config{
			Plan: plan, Epsilon: 0.1, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if idx != wantIdx || math.Float64bits(sum) != math.Float64bits(wantSum) {
			t.Fatalf("workers=%d: confidence scan returned (%d, %v), exact nearest is (%d, %v)",
				workers, idx, sum, wantIdx, wantSum)
		}
		if stats.PrunedCandidates == 0 {
			t.Errorf("workers=%d: no candidate pruned on data with 16x separation", workers)
		}
		if ev, tot := stats.CoordinatesEvaluated(), stats.CoordinatesTotal; ev*2 > tot {
			t.Errorf("workers=%d: evaluated %d of %d coordinates, expected a > 2x saving here", workers, ev, tot)
		}
		if refStats == nil {
			s := stats
			refStats = &s
		} else if *refStats != stats {
			t.Fatalf("workers=%d: stats %+v differ from first run %+v", workers, stats, *refStats)
		}
	}
}

func TestNearestCancellation(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	q := randVec(rng, 16)
	cands := make([][]float64, 64)
	for i := range cands {
		cands[i] = randVec(rng, 16)
	}
	src := vecSource(t, 1, 9, 4, 4, 11, q, cands, -1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, _, err := Nearest(ctx, src, Config{Chunk: 4}); err == nil {
		t.Fatal("cancelled context: want error, got nil")
	}
}

func TestNearestValidation(t *testing.T) {
	src := Source{K: 4, N: 2, QSketch: make([]float64, 3)}
	if _, _, _, err := Nearest(context.Background(), src, Config{}); err == nil {
		t.Error("mismatched sketch length: want error")
	}
	src = Source{K: 4, N: 0, QSketch: make([]float64, 4)}
	if _, _, _, err := Nearest(context.Background(), src, Config{}); err != ErrNoCandidates {
		t.Errorf("empty source: want ErrNoCandidates, got %v", err)
	}
	// A plan built for a different k must be rejected, not misapplied.
	plan, err := NewPlan(1, 8, core.EstimatorMedian, 0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	q := randVec(rng, 4)
	src = vecSource(t, 1, 5, 2, 2, 3, q, [][]float64{randVec(rng, 4)}, -1)
	if _, _, _, err := Nearest(context.Background(), src, Config{Plan: plan}); err == nil {
		t.Error("plan k mismatch: want error")
	}
}

func randVec(rng *rand.Rand, dim int) []float64 {
	v := make([]float64, dim)
	for i := range v {
		v[i] = rng.Float64()*4 - 2
	}
	return v
}

func BenchmarkProgressiveVsFullScanEngine(b *testing.B) {
	// Engine-level microbenchmark (the system-level numbers live in
	// cmd/tabmine-bench → BENCH_6.json).
	rng := rand.New(rand.NewPCG(2, 2))
	const rows, cols, k, n = 8, 8, 65, 256
	q := randVec(rng, rows*cols)
	cands := make([][]float64, n)
	for i := range cands {
		if i%32 == 5 {
			v := make([]float64, rows*cols)
			for j := range v {
				v[j] = q[j] + 0.05*rng.NormFloat64()
			}
			cands[i] = v
		} else {
			v := make([]float64, rows*cols)
			for j := range v {
				v[j] = 8 + 3*rng.NormFloat64()
			}
			cands[i] = v
		}
	}
	src := vecSource(b, 1, k, rows, cols, 5, q, cands, -1)
	plan, err := NewPlan(1, k, core.EstimatorMedian, 0, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("full_scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fullScan(src)
		}
	})
	for _, cfg := range []struct {
		name string
		c    Config
	}{
		{"exact_margin", Config{Workers: 1}},
		{"confidence_margin", Config{Plan: plan, Epsilon: 0.1, Workers: 1}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, _, err := Nearest(context.Background(), src, cfg.c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	_ = fmt.Sprint()
}
