package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/table"
)

// Shard-side scatter-gather surface. A coordinator (internal/coord)
// treats this server as one shard of a table sharded along the time
// (column) axis and speaks three sub-query endpoints, all answering in
// shard-LOCAL coordinates:
//
//   - GET  /v1/shardinfo        cheap self-description + snapshot generation
//   - GET  /v1/sketch?rect=...  O(k) pool sketch of one rectangle
//   - POST /v1/sketch/nearest   best local tile for a posted query sketch
//   - POST /v1/sketch/assign    best local medoid for a posted query sketch
//
// The merge algebra the coordinator applies is sound because the pool's
// random matrices depend only on (dyadic size, set, lane) — never on
// position — so equal (p, k, seed, estimator) make sketches from
// different shards mutually comparable, and equal (up to the float
// accumulation order of each shard's own FFT build) to the ones an
// unsharded pool over the full table would produce for the same
// data. Every answer echoes the snapshot generation it was computed
// from; one request resolves the snapshot exactly once, so an answer
// never mixes generations even while Swap runs concurrently.

// maxSketchBody bounds the posted sub-query body: a sketch is k
// float64s; 1 MiB covers k up to ~40000 in JSON with huge headroom.
const maxSketchBody = 1 << 20

// handleShardInfo answers /v1/shardinfo. Like /healthz it bypasses
// admission: a coordinator probes it to build and refresh its shard map
// (BaseCol moves when a sliding window trims; Generation moves on every
// publish) and it must stay cheap and shed-proof under load.
func (s *Server) handleShardInfo(w http.ResponseWriter, r *http.Request) {
	sn, gen := s.current()
	if sn == nil || s.Draining() {
		// A draining (lame-duck) shard reports not-ready so coordinators
		// route away from it, while queries already in flight still answer.
		writeJSON(w, http.StatusOK, &ShardInfo{Ready: false})
		return
	}
	pool := sn.Pool()
	writeJSON(w, http.StatusOK, &ShardInfo{
		Ready:    true,
		BaseCol:  pool.BaseCol(),
		Rows:     sn.tb.Rows(),
		Cols:     sn.tb.Cols(),
		TileRows: sn.TileRows(),
		TileCols: sn.TileCols(),
		Tiles:    sn.NumTiles(),
		Clusters: sn.Clusters(),

		P: pool.P(), K: pool.K(), Seed: pool.Seed(),
		Estimator: pool.Estimator().String(),

		Generation: gen,
	})
}

// subFunc executes one shard sub-query against a consistent
// (snapshot, generation) pair.
type subFunc func(ctx context.Context, sn *Snapshot, gen int64, r *http.Request) (any, error)

// wrapSub applies the serving policy shared with wrap — counting,
// deadline, admission, fault hook, error mapping — minus the tier
// machinery: sub-queries are always the O(k) sketch tier, so there is
// nothing to degrade to. Under saturation they shed with 503 +
// Retry-After like any other query, which is exactly the signal the
// coordinator's hedging and partial-answer machinery feeds on.
func (s *Server) wrapSub(op string, fn subFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		mRequests.Add(1)
		mShardSubqueries.Add(1)

		sn, gen, releaseSnap := s.acquire()
		defer releaseSnap()
		if sn == nil {
			s.writeNotReady(w)
			return
		}
		timeout := s.cfg.DefaultTimeout
		if tms := r.URL.Query().Get("timeout_ms"); tms != "" {
			v, err := strconv.Atoi(tms)
			if err != nil || v <= 0 {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("bad timeout_ms %q", tms))
				return
			}
			timeout = min(time.Duration(v)*time.Millisecond, s.cfg.MaxTimeout)
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()

		release, status := s.admit(ctx, 1)
		switch status {
		case admitShed:
			mShed.Add(1)
			w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
			writeError(w, http.StatusServiceUnavailable, "server saturated, retry later")
			return
		case admitTimeout:
			mTimedOut.Add(1)
			writeError(w, http.StatusGatewayTimeout, "deadline expired while queued")
			return
		}
		defer release()

		if s.cfg.Hook != nil {
			if err := s.cfg.Hook(op); err != nil {
				writeError(w, http.StatusInternalServerError, err.Error())
				return
			}
		}

		res, err := fn(ctx, sn, gen, r)
		if err != nil {
			switch {
			case err == errBadMethod:
				w.Header().Set("Allow", http.MethodPost)
				writeError(w, http.StatusMethodNotAllowed, "sketch sub-query endpoints accept POST only")
			case err == context.DeadlineExceeded || err == context.Canceled:
				mTimedOut.Add(1)
				writeError(w, http.StatusGatewayTimeout, "deadline expired mid-computation")
			case err == errNoClusters:
				writeError(w, http.StatusNotFound, err.Error())
			default:
				writeError(w, http.StatusBadRequest, err.Error())
			}
			return
		}
		mServed.Add(1)
		writeJSON(w, http.StatusOK, res)
	}
}

var errBadMethod = fmt.Errorf("method not allowed")

// subSketch answers GET /v1/sketch?rect=row,col,height,width (local
// coordinates): the pool sketch of the rectangle, the raw k-vector a
// coordinator sums lane-wise with other shards' chunks (sketches are
// linear in the data) or differences against another rect's sketch.
func (s *Server) subSketch(ctx context.Context, sn *Snapshot, gen int64, r *http.Request) (any, error) {
	rect, err := ParseRect(r.URL.Query().Get("rect"))
	if err != nil {
		return nil, err
	}
	if err := sn.validRect(rect); err != nil {
		return nil, err
	}
	buf := sn.getSketchBuf()
	defer sn.putSketchBuf(buf)
	sk, err := sn.pool.Sketch(rect, *buf)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(sk))
	copy(out, sk)
	return &SketchResult{
		Sketch: out, Exact: sn.pool.IsExact(rect), Generation: gen,
		BaseCol: sn.pool.BaseCol(),
	}, nil
}

// decodeSketchQuery parses and hardens a posted sub-query: the sketch
// must have exactly k entries and be finite (the ingress contract — a
// NaN would silently poison every estimator comparison downstream).
func decodeSketchQuery(sn *Snapshot, r *http.Request) (*SketchQueryRequest, *table.Rect, error) {
	if r.Method != http.MethodPost {
		return nil, nil, errBadMethod
	}
	var req SketchQueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxSketchBody))
	if err := dec.Decode(&req); err != nil {
		return nil, nil, fmt.Errorf("bad sketch sub-query body: %v", err)
	}
	if len(req.Sketch) != sn.pool.K() {
		return nil, nil, fmt.Errorf("sketch has %d entries, this shard's pool has k=%d",
			len(req.Sketch), sn.pool.K())
	}
	for i, v := range req.Sketch {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, nil, fmt.Errorf("sketch entry %d is not finite", i)
		}
	}
	var exclude *table.Rect
	if req.Exclude != "" {
		rect, err := ParseRect(req.Exclude)
		if err != nil {
			return nil, nil, err
		}
		exclude = &rect
	}
	return &req, exclude, nil
}

// subSketchNearest answers POST /v1/sketch/nearest: the local tile
// whose precomputed pool sketch is nearest to the posted query sketch
// under the O(k) estimator. Ties resolve to the lowest local tile
// index, which within a column-banded shard is also the lowest GLOBAL
// row-major index — the invariant that lets the coordinator's
// (distance, global index) best-merge reproduce an unsharded scan's
// tile choice exactly (distances agree to float rounding).
func (s *Server) subSketchNearest(ctx context.Context, sn *Snapshot, gen int64, r *http.Request) (any, error) {
	req, exclude, err := decodeSketchQuery(sn, r)
	if err != nil {
		return nil, err
	}
	idx, d, err := sn.SketchNearestVec(ctx, req.Sketch, exclude)
	if err != nil {
		return nil, err
	}
	return &SketchBest{
		Tile: idx, Rect: FormatRect(sn.tiles[idx]), Distance: d, Generation: gen,
		BaseCol: sn.pool.BaseCol(),
	}, nil
}

// subSketchAssign answers POST /v1/sketch/assign: the local cluster
// whose medoid tile sketch is nearest to the posted query sketch.
// Cluster ids are shard-local (each shard clusters its own tiles); the
// coordinator reports them alongside the shard that produced them.
func (s *Server) subSketchAssign(ctx context.Context, sn *Snapshot, gen int64, r *http.Request) (any, error) {
	req, _, err := decodeSketchQuery(sn, r)
	if err != nil {
		return nil, err
	}
	c, m, d, err := sn.SketchAssignVec(ctx, req.Sketch)
	if err != nil {
		return nil, err
	}
	return &SketchBest{
		Tile: m, Rect: FormatRect(sn.tiles[m]),
		Cluster: c, Medoid: m, Distance: d, Generation: gen,
		BaseCol: sn.pool.BaseCol(),
	}, nil
}
