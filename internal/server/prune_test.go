// Tests of the progressive-pruning serving path: the exact-margin
// property (byte-identical answers to the full scan at any worker
// count), the confidence-margin statistical recall acceptance, exact
// counter deltas, and snapshot swaps racing mode=prune queries.
package server_test

import (
	"bytes"
	"context"
	"math"
	"math/bits"
	"math/rand/v2"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/table"
	"repro/internal/workload"
)

// buildSnap assembles a snapshot over tb with the given sketch and grid
// shape (helper for the many-table property trials).
func buildSnap(t testing.TB, tb *table.Table, p float64, k int, tile, clusters int, seed uint64) *server.Snapshot {
	t.Helper()
	// One pooled dyadic size — the tile size itself — keeps the 200
	// per-trial pool builds cheap; offset queries still sketch fine as
	// compound rectangles of that size.
	lg := bits.Len(uint(tile)) - 1
	pool, err := core.NewPool(tb, p, k, seed, core.PoolOptions{
		MinLogRows: lg, MaxLogRows: lg, MinLogCols: lg, MaxLogCols: lg,
	})
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	sn, err := server.BuildSnapshot(context.Background(), tb, pool, server.SnapshotConfig{
		TileRows: tile, TileCols: tile, Clusters: clusters, Seed: seed,
	})
	if err != nil {
		t.Fatalf("BuildSnapshot: %v", err)
	}
	return sn
}

// TestPruneExactMarginProperty is the losslessness acceptance: across
// 200 random tables and grid shapes, the exact-margin progressive scan
// returns bit-identical (tile, distance) to ExactNearest — and
// ProgressiveAssign to ExactAssign — at workers 1, 2, and GOMAXPROCS,
// with worker-count-invariant statistics.
func TestPruneExactMarginProperty(t *testing.T) {
	workersList := []int{1, 2, runtime.GOMAXPROCS(0)}
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewPCG(0x9EA2, uint64(trial)))
		p := []float64{0.5, 1, 2}[trial%3]
		dim := []int{16, 24, 32}[rng.IntN(3)]
		tile := []int{4, 8}[rng.IntN(2)]
		k := 5 + rng.IntN(20)
		tb := workload.Random(dim, dim, 10, 0xAB+uint64(trial))
		sn := buildSnap(t, tb, p, k, tile, 3, uint64(trial)+1)

		// One aligned tile query and one arbitrary-offset query.
		queries := []table.Rect{
			{R0: tile * rng.IntN(dim/tile), C0: tile * rng.IntN(dim/tile), Rows: tile, Cols: tile},
			{R0: rng.IntN(dim - tile + 1), C0: rng.IntN(dim - tile + 1), Rows: tile, Cols: tile},
		}
		ctx := context.Background()
		for _, q := range queries {
			wantIdx, wantD, err := sn.ExactNearest(ctx, q, 1)
			if err != nil {
				t.Fatalf("trial %d: ExactNearest(%v): %v", trial, q, err)
			}
			wantC, wantM, wantAD, err := sn.ExactAssign(ctx, q)
			if err != nil {
				t.Fatalf("trial %d: ExactAssign(%v): %v", trial, q, err)
			}
			var refStats *server.PruneStats
			for _, workers := range workersList {
				idx, d, st, err := sn.ProgressiveNearest(ctx, q, workers, nil, 0)
				if err != nil {
					t.Fatalf("trial %d workers=%d: ProgressiveNearest(%v): %v", trial, workers, q, err)
				}
				if idx != wantIdx || math.Float64bits(d) != math.Float64bits(wantD) {
					t.Fatalf("trial %d workers=%d q=%v: progressive (%d, %x) != exact (%d, %x)",
						trial, workers, q, idx, math.Float64bits(d), wantIdx, math.Float64bits(wantD))
				}
				if st.PrunedCandidates != 0 {
					t.Fatalf("trial %d: exact margin pruned %d candidates", trial, st.PrunedCandidates)
				}
				cur := &server.PruneStats{
					Candidates: st.Candidates, ScreenSurvivors: st.ScreenSurvivors,
					RefineAbandoned: st.RefineAbandoned, LanesEvaluated: st.LanesEvaluated,
					CellsEvaluated: st.CellsEvaluated, CoordinatesTotal: st.CoordinatesTotal,
				}
				if refStats == nil {
					refStats = cur
				} else if *refStats != *cur {
					t.Fatalf("trial %d workers=%d q=%v: stats %+v differ from %+v",
						trial, workers, q, cur, refStats)
				}

				c, m, ad, _, err := sn.ProgressiveAssign(ctx, q, workers, nil, 0)
				if err != nil {
					t.Fatalf("trial %d workers=%d: ProgressiveAssign(%v): %v", trial, workers, q, err)
				}
				if c != wantC || m != wantM || math.Float64bits(ad) != math.Float64bits(wantAD) {
					t.Fatalf("trial %d workers=%d q=%v: assign (%d, %d, %x) != exact (%d, %d, %x)",
						trial, workers, q, c, m, math.Float64bits(ad), wantC, wantM, math.Float64bits(wantAD))
				}
			}
		}
	}
}

// plantedTable builds a table whose 8x8 grid tiles split into a tight
// cluster of near-duplicates (every fifth tile) and a far-away
// majority — the separated regime where the confidence screen actually
// eliminates candidates (uniform noise concentrates distances and
// defeats pruning, so the random fixture alone would make the recall
// test vacuous).
func plantedTable(rows, cols int, seed uint64) *table.Table {
	rng := rand.New(rand.NewPCG(seed, 0x91a47ed))
	base := make([]float64, 64)
	for i := range base {
		base[i] = rng.Float64()*4 - 2
	}
	tb := table.New(rows, cols)
	for tr := 0; tr < rows/8; tr++ {
		for tc := 0; tc < cols/8; tc++ {
			near := (tr*(cols/8)+tc)%5 == 0
			for r := 0; r < 8; r++ {
				for c := 0; c < 8; c++ {
					if near {
						tb.Set(tr*8+r, tc*8+c, base[r*8+c]+0.05*rng.NormFloat64())
					} else {
						tb.Set(tr*8+r, tc*8+c, 40+10*rng.NormFloat64())
					}
				}
			}
		}
	}
	return tb
}

var (
	plantedOnce sync.Once
	plantedSn   *server.Snapshot
)

func planted(t *testing.T) *server.Snapshot {
	t.Helper()
	plantedOnce.Do(func() {
		plantedSn = buildSnap(t, plantedTable(64, 64, 5), 1, 64, 8, 4, 11)
	})
	return plantedSn
}

// TestPruneRecallStatistical is the statistical acceptance: across 200
// seeded trials per setting, the confidence-margin answer must equal
// the exact nearest tile in at least a 1−delta fraction — the engine's
// recall guarantee — at both a loose and a tight failure budget.
func TestPruneRecallStatistical(t *testing.T) {
	ctx := context.Background()
	snaps := []*server.Snapshot{snap(t), planted(t)}
	for _, setting := range []struct{ epsilon, delta float64 }{
		{0.1, 0.05},
		{0.3, 0.01},
	} {
		const trials = 200
		matches, pruned := 0, int64(0)
		rng := rand.New(rand.NewPCG(0x2ECA11, uint64(math.Float64bits(setting.delta))))
		for trial := 0; trial < trials; trial++ {
			sn := snaps[trial%len(snaps)]
			q := table.Rect{R0: rng.IntN(57), C0: rng.IntN(57), Rows: 8, Cols: 8}
			plan, err := sn.Plan(setting.delta)
			if err != nil {
				t.Fatalf("plan(delta=%v): %v", setting.delta, err)
			}
			wantIdx, _, err := sn.ExactNearest(ctx, q, 0)
			if err != nil {
				t.Fatalf("ExactNearest: %v", err)
			}
			idx, _, st, err := sn.ProgressiveNearest(ctx, q, 0, plan, setting.epsilon)
			if err != nil {
				t.Fatalf("ProgressiveNearest: %v", err)
			}
			if idx == wantIdx {
				matches++
			}
			pruned += int64(st.PrunedCandidates)
		}
		recall := float64(matches) / trials
		if recall < 1-setting.delta {
			t.Errorf("(epsilon=%v, delta=%v): recall %v (%d/%d) below 1-delta = %v",
				setting.epsilon, setting.delta, recall, matches, trials, 1-setting.delta)
		}
		if pruned == 0 {
			t.Errorf("(epsilon=%v, delta=%v): no candidate pruned across %d trials; test is vacuous",
				setting.epsilon, setting.delta, trials)
		}
		t.Logf("(epsilon=%v, delta=%v): recall %d/%d, %d candidates pruned",
			setting.epsilon, setting.delta, matches, trials, pruned)
	}
}

// TestPruneCounterDeltas pins the prune expvar counters and the
// per-response stats to exact values on a fixed fixture query: the
// counters must advance by precisely the response's own numbers.
func TestPruneCounterDeltas(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 1})
	q := table.Rect{R0: 8, C0: 8, Rows: 8, Cols: 8} // grid tile 9

	before := server.ReadStats()
	var nr server.NearestResult
	getJSON(t, ts.URL+"/v1/nearest?q="+server.FormatRect(q)+"&mode=prune", 200, &nr)
	if nr.Tier != server.TierPruned || nr.Degraded || nr.Prune == nil {
		t.Fatalf("mode=prune: got %+v", nr)
	}
	ps := nr.Prune
	if ps.Margin != server.MarginConfidence ||
		ps.Epsilon != server.DefaultPruneEpsilon || ps.Delta != server.DefaultPruneDelta {
		t.Errorf("prune stats knobs: %+v", ps)
	}
	// The fixture grid has 64 tiles; q is tile 9, so 63 candidates of
	// 8x8 = 64 cells each.
	if ps.Candidates != 63 || ps.CoordinatesTotal != 63*64 {
		t.Errorf("candidates %d / total %d, want 63 / %d", ps.Candidates, ps.CoordinatesTotal, 63*64)
	}
	if ps.ScreenSurvivors+ps.PrunedCandidates != ps.Candidates {
		t.Errorf("survivors %d + pruned %d != %d", ps.ScreenSurvivors, ps.PrunedCandidates, ps.Candidates)
	}
	if want := ps.CoordinatesTotal - ps.LanesEvaluated - ps.CellsEvaluated; ps.PrunedCoordinates != max(want, 0) {
		t.Errorf("pruned_coordinates %d inconsistent with lanes %d + cells %d of %d",
			ps.PrunedCoordinates, ps.LanesEvaluated, ps.CellsEvaluated, ps.CoordinatesTotal)
	}
	after := server.ReadStats()
	if d := after.PrunedCandidates - before.PrunedCandidates; d != int64(ps.PrunedCandidates) {
		t.Errorf("tabmine_pruned_candidates advanced %d, response says %d", d, ps.PrunedCandidates)
	}
	if d := after.PrunedCoordinates - before.PrunedCoordinates; d != ps.PrunedCoordinates {
		t.Errorf("tabmine_pruned_coordinates advanced %d, response says %d", d, ps.PrunedCoordinates)
	}
	if d := after.ScreenSurvivors - before.ScreenSurvivors; d != int64(ps.ScreenSurvivors) {
		t.Errorf("tabmine_screen_survivors advanced %d, response says %d", d, ps.ScreenSurvivors)
	}

	// Auto queries ride the exact margin: same counters, zero pruned
	// candidates, and the answer fields match mode=exact bit for bit.
	before = after
	var auto, exact server.NearestResult
	getJSON(t, ts.URL+"/v1/nearest?q="+server.FormatRect(q), 200, &auto)
	getJSON(t, ts.URL+"/v1/nearest?q="+server.FormatRect(q)+"&mode=exact", 200, &exact)
	if auto.Prune == nil || auto.Prune.Margin != server.MarginExact || auto.Prune.PrunedCandidates != 0 {
		t.Fatalf("auto nearest prune stats: %+v", auto.Prune)
	}
	if exact.Prune != nil {
		t.Errorf("mode=exact carries prune stats: %+v", exact.Prune)
	}
	if auto.Tile != exact.Tile || auto.Rect != exact.Rect ||
		math.Float64bits(auto.Distance) != math.Float64bits(exact.Distance) {
		t.Errorf("auto answer (%d, %s, %x) != exact (%d, %s, %x)",
			auto.Tile, auto.Rect, math.Float64bits(auto.Distance),
			exact.Tile, exact.Rect, math.Float64bits(exact.Distance))
	}
	after = server.ReadStats()
	if d := after.ScreenSurvivors - before.ScreenSurvivors; d != int64(auto.Prune.ScreenSurvivors) {
		t.Errorf("auto tier: tabmine_screen_survivors advanced %d, response says %d", d, auto.Prune.ScreenSurvivors)
	}
	if d := after.PrunedCandidates - before.PrunedCandidates; d != 0 {
		t.Errorf("auto tier advanced tabmine_pruned_candidates by %d", d)
	}

	// Assign honors the same mode and counters.
	before = after
	var ar server.AssignResult
	getJSON(t, ts.URL+"/v1/assign?q="+server.FormatRect(q)+"&mode=prune&epsilon=0.3&delta=0.01", 200, &ar)
	if ar.Tier != server.TierPruned || ar.Prune == nil ||
		ar.Prune.Epsilon != 0.3 || ar.Prune.Delta != 0.01 || ar.Prune.Candidates != 4 {
		t.Fatalf("assign mode=prune: %+v prune=%+v", ar, ar.Prune)
	}
	after = server.ReadStats()
	if d := after.ScreenSurvivors - before.ScreenSurvivors; d != int64(ar.Prune.ScreenSurvivors) {
		t.Errorf("assign: tabmine_screen_survivors advanced %d, response says %d", d, ar.Prune.ScreenSurvivors)
	}

	// Parameter and mode validation.
	for _, bad := range []string{
		"/v1/nearest?q=8,8,8,8&mode=prune&epsilon=-1",
		"/v1/nearest?q=8,8,8,8&mode=prune&epsilon=wat",
		"/v1/nearest?q=8,8,8,8&mode=prune&delta=0",
		"/v1/nearest?q=8,8,8,8&mode=prune&delta=1",
		"/v1/assign?q=8,8,8,8&mode=prune&delta=nope",
		"/v1/distance?a=0,0,8,8&b=8,8,8,8&mode=prune",
	} {
		if code, _, body := get(t, ts.URL+bad); code != 400 {
			t.Errorf("GET %s: status %d, want 400 (body %s)", bad, code, body)
		}
	}
}

// TestPruneResponsesWorkerInvariant: the serialized response bytes of
// prune-mode and auto queries — including the embedded statistics —
// must not depend on the server's worker count.
func TestPruneResponsesWorkerInvariant(t *testing.T) {
	paths := []string{
		"/v1/nearest?q=3,5,8,8&mode=prune",
		"/v1/nearest?q=0,0,8,8&mode=prune&epsilon=0.3&delta=0.01",
		"/v1/nearest?q=16,24,8,8",
		"/v1/assign?q=3,5,8,8&mode=prune",
		"/v1/assign?q=16,24,8,8",
	}
	var want [][]byte
	for i, workers := range []int{1, 2, 0} {
		s, err := server.New(snap(t), server.Config{Workers: workers})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		ts := httptest.NewServer(s.Handler())
		for j, path := range paths {
			code, _, body := get(t, ts.URL+path)
			if code != 200 {
				t.Fatalf("workers=%d GET %s: status %d (body %s)", workers, path, code, body)
			}
			if i == 0 {
				want = append(want, body)
			} else if !bytes.Equal(body, want[j]) {
				t.Errorf("workers=%d GET %s:\n  got  %s\n  want %s", workers, path, body, want[j])
			}
		}
		ts.Close()
	}
}

// TestPruneDuringSwapRace hammers mode=prune nearest queries while the
// snapshot swaps continuously: every answer must be fully consistent
// with exactly one generation (the race detector checks the memory
// side under tier-1's -race run; the byte assertion checks the answer
// side, including the plan cache that memoizes lazily per snapshot).
func TestPruneDuringSwapRace(t *testing.T) {
	tb2 := workload.Random(64, 64, 100, 123)
	pool2, err := core.NewPool(tb2, 1, 64, 42, core.PoolOptions{
		MinLogRows: 2, MaxLogRows: 3, MinLogCols: 2, MaxLogCols: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap2, err := server.BuildSnapshot(context.Background(), tb2, pool2, server.SnapshotConfig{
		TileRows: 8, TileCols: 8, Clusters: 4, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}

	s, ts := newTestServer(t, server.Config{MaxInflight: 8})
	const q = "/v1/nearest?q=3,5,8,8&mode=prune&delta=0.02"

	_, _, wantA := get(t, ts.URL+q)
	s.Swap(snap2)
	_, _, wantB := get(t, ts.URL+q)
	if bytes.Equal(wantA, wantB) {
		t.Fatal("fixture snapshots answer identically; race assertion would be vacuous")
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, _, body := get(t, ts.URL+q)
				if code != 200 {
					t.Errorf("prune query during swap: status %d (body %s)", code, body)
					return
				}
				if !bytes.Equal(body, wantA) && !bytes.Equal(body, wantB) {
					t.Errorf("blended prune answer during swap: %s", body)
					return
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			s.Swap(snap(t))
		} else {
			// A fresh snapshot over the same data: its plan cache starts
			// empty, so queries race the lazy plan memoization too.
			fresh, err := server.BuildSnapshot(context.Background(), tb2, pool2, server.SnapshotConfig{
				TileRows: 8, TileCols: 8, Clusters: 4, Seed: 42,
			})
			if err != nil {
				t.Errorf("rebuild: %v", err)
				break
			}
			s.Swap(fresh)
		}
	}
	close(stop)
	wg.Wait()
}
