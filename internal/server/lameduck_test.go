// Tests of the lame-duck drain state and the base_col echo on sketch
// sub-query answers — the shard-side halves of the coordinator's
// planned-handoff protocol: BeginDrain withdraws readiness (so probers
// route away) without refusing queries, and base_col lets the
// coordinator fence answers from a stale placement.
package server_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/workload"
)

func TestLameDuckDrain(t *testing.T) {
	s, ts := newTestServer(t, server.Config{})

	if code, _, body := get(t, ts.URL+"/readyz"); code != 200 {
		t.Fatalf("pre-drain /readyz: %d (%s)", code, body)
	}
	if s.Draining() {
		t.Fatal("Draining() true before BeginDrain")
	}

	s.BeginDrain()
	s.BeginDrain() // idempotent
	if !s.Draining() {
		t.Fatal("Draining() false after BeginDrain")
	}

	// Readiness is withdrawn with the drain reason and a retry hint...
	code, hdr, body := get(t, ts.URL+"/readyz")
	if code != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Fatalf("draining /readyz: %d, Retry-After %q (%s)", code, hdr.Get("Retry-After"), body)
	}
	var rd server.Ready
	getJSONBody(t, body, &rd)
	if rd.Status != "draining" || rd.Generation == 0 {
		t.Errorf("draining readyz body: %s", body)
	}

	// ...the shard withdraws from scatter-gather routing...
	var info server.ShardInfo
	getJSON(t, ts.URL+"/v1/shardinfo", 200, &info)
	if info.Ready {
		t.Errorf("draining shard still advertises Ready=true: %+v", info)
	}

	// ...but queries still serve: lame duck sheds new routing, not
	// in-flight or straggler work.
	var res server.NearestResult
	getJSON(t, ts.URL+"/v1/nearest?q=0,0,8,8&mode=sketch", 200, &res)
	if res.Tile < 0 {
		t.Errorf("draining nearest: %+v", res)
	}
	if code, _, _ := get(t, ts.URL+"/healthz"); code != 200 {
		t.Errorf("draining /healthz: %d, want 200 (liveness is not readiness)", code)
	}
}

func getJSONBody(t *testing.T, body []byte, out any) {
	t.Helper()
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatalf("bad JSON %q: %v", body, err)
	}
}

// TestSketchBaseColEcho: a shard serving a non-zero column placement
// echoes base_col on every sketch sub-query answer, giving the
// coordinator the fence that keeps a stale placement out of merges.
func TestSketchBaseColEcho(t *testing.T) {
	const baseCol = 16
	tb := workload.Random(32, 32, 25, 9)
	pool, err := core.NewPool(tb, 1, 16, 5, core.PoolOptions{
		MinLogRows: 3, MaxLogRows: 3, MinLogCols: 3, MaxLogCols: 3, BaseCol: baseCol,
	})
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	sn, err := server.BuildSnapshot(context.Background(), tb, pool, server.SnapshotConfig{
		TileRows: 8, TileCols: 8, Clusters: 2, Seed: 5,
	})
	if err != nil {
		t.Fatalf("BuildSnapshot: %v", err)
	}
	s, err := server.New(sn, server.Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var sk server.SketchResult
	getJSON(t, ts.URL+"/v1/sketch?rect=0,0,8,8", 200, &sk)
	if sk.BaseCol != baseCol {
		t.Errorf("sketch base_col %d, want %d", sk.BaseCol, baseCol)
	}

	var best server.SketchBest
	postJSON(t, ts.URL+"/v1/sketch/nearest", &server.SketchQueryRequest{Sketch: sk.Sketch}, 200, &best)
	if best.BaseCol != baseCol {
		t.Errorf("sketch/nearest base_col %d, want %d", best.BaseCol, baseCol)
	}
	var asg server.SketchBest
	postJSON(t, ts.URL+"/v1/sketch/assign", &server.SketchQueryRequest{Sketch: sk.Sketch}, 200, &asg)
	if asg.BaseCol != baseCol {
		t.Errorf("sketch/assign base_col %d, want %d", asg.BaseCol, baseCol)
	}
}
