package server_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/workload"
)

// fakeIngestor records bodies and can be switched into backlog or
// failure modes, exercising the handler's error mapping without a real
// ingestion pipeline behind it.
type fakeIngestor struct {
	mu     sync.Mutex
	bodies [][]byte
	err    error
}

func (f *fakeIngestor) IngestRecord(ctx context.Context, body io.Reader) (*server.IngestResult, error) {
	b, err := io.ReadAll(body)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err != nil {
		return nil, f.err
	}
	f.bodies = append(f.bodies, b)
	return &server.IngestResult{
		Label: fmt.Sprintf("d%03d", len(f.bodies)), Cols: 1,
		ColsTotal: len(f.bodies), Pending: 0,
	}, nil
}

func post(t *testing.T, url string, body []byte) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, resp.Header, out
}

func TestIngestEndpoint(t *testing.T) {
	fi := &fakeIngestor{}
	_, ts := newTestServer(t, server.Config{Ingestor: fi})

	// Happy path: the body reaches the ingestor and the result echoes.
	code, _, body := post(t, ts.URL+"/v1/ingest", []byte("record-1"))
	if code != http.StatusOK {
		t.Fatalf("ingest status %d (body %s)", code, body)
	}
	if len(fi.bodies) != 1 || string(fi.bodies[0]) != "record-1" {
		t.Fatalf("ingestor saw %q", fi.bodies)
	}

	// Wrong method.
	code, _, _ = get(t, ts.URL+"/v1/ingest")
	if code != http.StatusMethodNotAllowed {
		t.Fatalf("GET ingest status %d, want 405", code)
	}

	// Backlog shedding: 503 with a Retry-After hint, like query shedding.
	fi.mu.Lock()
	fi.err = fmt.Errorf("pipeline: %w", server.ErrIngestBacklog)
	fi.mu.Unlock()
	code, hdr, _ := post(t, ts.URL+"/v1/ingest", []byte("record-2"))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("backlogged ingest status %d, want 503", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("503 ingest answer missing Retry-After")
	}

	// Any other ingest failure is the client's fault: 400.
	fi.mu.Lock()
	fi.err = fmt.Errorf("bad record framing")
	fi.mu.Unlock()
	code, _, _ = post(t, ts.URL+"/v1/ingest", []byte("record-3"))
	if code != http.StatusBadRequest {
		t.Fatalf("malformed ingest status %d, want 400", code)
	}
}

func TestIngestDisabled(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	code, _, _ := post(t, ts.URL+"/v1/ingest", []byte("x"))
	if code != http.StatusNotFound {
		t.Fatalf("ingest without an Ingestor: status %d, want 404", code)
	}
}

// The Publisher contract under fire: snapshots swap continuously while
// queries execute, and every answer must be fully consistent with
// exactly one generation — never a blend. The race detector (tier-1
// runs this package under -race) checks the memory side; the assertion
// here checks the answer side via determinism: each snapshot produces
// one exact byte sequence per query, so every response must equal one
// of the two expected bodies.
func TestPublishDuringQueryRace(t *testing.T) {
	tb2 := workload.Random(64, 64, 100, 99)
	pool2, err := core.NewPool(tb2, 1, 64, 42, core.PoolOptions{
		MinLogRows: 2, MaxLogRows: 3, MinLogCols: 2, MaxLogCols: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap2, err := server.BuildSnapshot(context.Background(), tb2, pool2, server.SnapshotConfig{
		TileRows: 8, TileCols: 8, Clusters: 4, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}

	s, ts := newTestServer(t, server.Config{MaxInflight: 8})
	const q = "/v1/distance?a=0,0,8,8&b=8,8,8,8&mode=exact"

	// One reference body per generation.
	_, _, wantA := get(t, ts.URL+q)
	s.Publish(snap2)
	_, _, wantB := get(t, ts.URL+q)
	if bytes.Equal(wantA, wantB) {
		t.Fatal("fixture snapshots answer identically; race assertion would be vacuous")
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, _, body := get(t, ts.URL+q)
				if code != http.StatusOK {
					t.Errorf("query during publish: status %d (body %s)", code, body)
					return
				}
				if !bytes.Equal(body, wantA) && !bytes.Equal(body, wantB) {
					t.Errorf("blended answer during publish: %s", body)
					return
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			s.Publish(snap(t))
		} else {
			s.Publish(snap2)
		}
	}
	close(stop)
	wg.Wait()
}
