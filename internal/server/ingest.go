package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// Publisher receives freshly built immutable snapshots from a streaming
// ingestion pipeline. Server implements it: Publish is the programmatic
// twin of the SIGHUP hot-reload path — an atomic swap with no signal,
// no restart, and no effect on queries already executing against the
// previous generation.
type Publisher interface {
	Publish(*Snapshot)
}

// Publish atomically replaces the serving snapshot. It is Swap under
// the name the ingestion layer's Publisher contract uses; both count as
// reloads on /healthz and /debug/vars.
func (s *Server) Publish(snap *Snapshot) { s.Swap(snap) }

// ErrIngestBacklog reports that the ingestion pipeline's bounded
// pending-append queue is full: the record was NOT durably accepted and
// the client should retry after a pause. The /v1/ingest handler maps it
// to 503 + Retry-After, the same shedding contract the query admission
// path uses.
var ErrIngestBacklog = errors.New("ingest backlog full")

// Ingestor consumes one pushed day-column record (the tabmine-ingest
// wire format: a label line followed by a TABF table) from a request
// body. Implementations must be safe for concurrent use; internal/
// ingest serializes appends behind its own mutex. An error wrapping
// ErrIngestBacklog means "durably rejected, retry later"; any other
// error means the record was malformed or ingestion has shut down.
type Ingestor interface {
	IngestRecord(ctx context.Context, body io.Reader) (*IngestResult, error)
}

// IngestResult answers a successful POST /v1/ingest.
type IngestResult struct {
	Label     string `json:"label"`      // day label the record was stored under
	Cols      int    `json:"cols"`       // columns in this record
	ColsTotal int    `json:"cols_total"` // store columns after the append
	Pending   int    `json:"pending"`    // days appended but not yet in the served snapshot
}

// handleIngest is the push half of streaming ingestion: POST a record
// in the tabmine-ingest wire format and it lands durably in the
// tabstore before the response, with the sketch pool and snapshot
// catching up asynchronously. Backlog shedding answers 503 +
// Retry-After without touching disk, so a client retry loop is safe.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.cfg.Ingestor == nil {
		writeError(w, http.StatusNotFound, "ingestion not enabled")
		return
	}
	mIngest.Add(1)
	res, err := s.cfg.Ingestor.IngestRecord(r.Context(), r.Body)
	if err != nil {
		switch {
		case errors.Is(err, ErrIngestBacklog):
			mIngestShed.Add(1)
			w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
			writeError(w, http.StatusServiceUnavailable, err.Error())
		case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
			mIngestErrors.Add(1)
			writeError(w, http.StatusGatewayTimeout, "deadline expired during ingest")
		default:
			mIngestErrors.Add(1)
			writeError(w, http.StatusBadRequest, fmt.Sprintf("ingest: %v", err))
		}
		return
	}
	mIngestAccepted.Add(1)
	writeJSON(w, http.StatusOK, res)
}
