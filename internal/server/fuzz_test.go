// FuzzBatchRequest drives arbitrary bytes through the batch endpoint —
// the exact surface POST /v1/batch/* exposes to the network. The
// invariants: never panic, never answer 5xx (admission is sized so an
// unloaded fuzz worker cannot shed), always answer valid JSON, and on
// 200 the per-item contract holds: one answer slot per request item,
// malformed items carried as {"error": ...} objects without failing
// the rest of the batch, and Served+Failed covering every slot.
package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/server"
)

var (
	fuzzOnce sync.Once
	fuzzURL  string
)

// fuzzServer builds one shared small-MaxBatch server per fuzz worker
// process. The httptest server is deliberately never closed: it must
// outlive every f.Fuzz invocation, and the process owns it.
func fuzzServer(f *testing.F) string {
	f.Helper()
	fuzzOnce.Do(func() {
		s, err := server.New(snap(f), server.Config{
			MaxBatch: 4, MaxInflight: 8, MaxQueue: 32,
		})
		if err != nil {
			panic(err)
		}
		fuzzURL = httptest.NewServer(s.Handler()).URL
	})
	return fuzzURL
}

func FuzzBatchRequest(f *testing.F) {
	base := fuzzServer(f)

	mk := func(req server.BatchRequest) []byte {
		b, err := json.Marshal(&req)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	// Valid mixed batch: good items, an out-of-bounds rect, a parse
	// failure, and a duplicate of a good item.
	f.Add("nearest", mk(server.BatchRequest{Items: []server.BatchItem{
		{Q: "8,8,8,8"}, {Q: "4096,0,8,8"}, {Q: "not-a-rect"}, {Q: "8,8,8,8"},
	}}))
	f.Add("assign", mk(server.BatchRequest{Mode: server.ModeSketch, Items: []server.BatchItem{
		{Q: "0,0,8,8"}, {Q: ""},
	}}))
	f.Add("distance", mk(server.BatchRequest{Items: []server.BatchItem{
		{A: "0,0,8,8", B: "8,8,8,8"}, {A: "0,0,8,8"},
	}}))
	// Oversized (5 > MaxBatch 4), empty, bad mode, negative timeout.
	f.Add("nearest", mk(server.BatchRequest{Items: make([]server.BatchItem, 5)}))
	f.Add("nearest", mk(server.BatchRequest{}))
	f.Add("assign", mk(server.BatchRequest{Mode: "warp", Items: []server.BatchItem{{Q: "0,0,8,8"}}}))
	f.Add("distance", mk(server.BatchRequest{TimeoutMS: -1, Items: []server.BatchItem{{A: "0,0,8,8", B: "0,0,8,8"}}}))
	// Structurally hostile bodies.
	f.Add("nearest", []byte(`{"items": [{"q": 3}]}`))
	f.Add("nearest", []byte(`{"items": "nope"}`))
	f.Add("prune", []byte(`{}`))
	f.Add("nearest", []byte(`[`))
	f.Add("nearest", bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, op string, body []byte) {
		switch op {
		case "nearest", "assign", "distance":
		default:
			op = "nearest" // off-registry ops just probe the mux, not the handler
		}
		resp, err := http.Post(base+"/v1/batch/"+op, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 500 {
			t.Fatalf("batch %s answered %d", op, resp.StatusCode)
		}
		var raw json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
			t.Fatalf("batch %s answered invalid JSON (status %d): %v", op, resp.StatusCode, err)
		}
		if resp.StatusCode != http.StatusOK {
			return
		}

		// A 200 commits the handler to the per-item contract.
		var req server.BatchRequest
		if err := json.Unmarshal(body, &req); err != nil {
			t.Fatalf("server answered 200 to a body the decoder rejects: %v", err)
		}
		var br server.BatchResponse
		if err := json.Unmarshal(raw, &br); err != nil {
			t.Fatalf("bad BatchResponse: %v", err)
		}
		if len(br.Items) != len(req.Items) {
			t.Fatalf("%d answer slots for %d items", len(br.Items), len(req.Items))
		}
		if br.Served+br.Failed != len(br.Items) {
			t.Fatalf("served %d + failed %d != %d items", br.Served, br.Failed, len(br.Items))
		}
		failed := 0
		for i, item := range br.Items {
			var e struct {
				Error *string `json:"error"`
			}
			if err := json.Unmarshal(item, &e); err != nil {
				t.Fatalf("item %d is not a JSON object: %q", i, item)
			}
			if e.Error != nil {
				if *e.Error == "" {
					t.Fatalf("item %d carries an empty error", i)
				}
				failed++
			}
		}
		if failed != br.Failed {
			t.Fatalf("counted %d error items, response claims %d", failed, br.Failed)
		}
	})
}
