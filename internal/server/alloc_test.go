// Allocation regression tests for the single-query serving paths.
// Before the sync.Pool scratch landed (prune search scratch, snapshot
// query-sketch buffers), a workers=1 ProgressiveNearest ran 88–93
// allocs/op (BENCH_6.json); pooling cut that to ~22. The bounds here
// leave modest headroom so unrelated runtime changes don't flake, while
// still failing loudly if per-query scratch regresses to per-item
// allocation.
package server_test

import (
	"context"
	"testing"

	"repro/internal/table"
)

func assertAllocs(t *testing.T, name string, bound float64, fn func()) {
	t.Helper()
	fn() // warm the pools outside the measured runs
	if a := testing.AllocsPerRun(50, fn); a > bound {
		t.Errorf("%s: %.1f allocs/op, want <= %v", name, a, bound)
	}
}

func TestSingleQueryAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are process-global and distorted under the race detector")
	}
	sn := snap(t)
	ctx := context.Background()
	// A compound (grid-offset) query: the worst case, since sketching it
	// assembles four dyadic corners instead of one lookup.
	q := table.Rect{R0: 3, C0: 5, Rows: 8, Cols: 8}
	b := table.Rect{R0: 16, C0: 16, Rows: 8, Cols: 8}
	plan, err := sn.Plan(0.05)
	if err != nil {
		t.Fatal(err)
	}

	assertAllocs(t, "ProgressiveNearest(exact margin)", 30, func() {
		if _, _, _, err := sn.ProgressiveNearest(ctx, q, 1, nil, 0); err != nil {
			t.Fatal(err)
		}
	})
	assertAllocs(t, "ProgressiveNearest(confidence margin)", 30, func() {
		if _, _, _, err := sn.ProgressiveNearest(ctx, q, 1, plan, 0.1); err != nil {
			t.Fatal(err)
		}
	})
	assertAllocs(t, "ProgressiveAssign", 25, func() {
		if _, _, _, _, err := sn.ProgressiveAssign(ctx, q, 1, nil, 0); err != nil {
			t.Fatal(err)
		}
	})
	assertAllocs(t, "SketchNearest", 4, func() {
		if _, _, err := sn.SketchNearest(ctx, q); err != nil {
			t.Fatal(err)
		}
	})
	assertAllocs(t, "SketchAssign", 4, func() {
		if _, _, _, err := sn.SketchAssign(ctx, q); err != nil {
			t.Fatal(err)
		}
	})
	assertAllocs(t, "SketchDistance", 2, func() {
		if _, err := sn.SketchDistance(q, b); err != nil {
			t.Fatal(err)
		}
	})
}
