package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/prune"
	"repro/internal/table"
)

// Batched query serving: POST /v1/batch/{distance,nearest,assign}
// carries up to MaxBatch queries in one JSON body. The per-request
// overhead — HTTP round trip, JSON decode/encode, deadline setup, and
// above all admission — is paid once per batch instead of once per
// query, while the answers themselves stay byte-identical to the
// single-query endpoints: each item runs through the same item*
// function GET uses, and each item makes its own tier decision, so a
// batch under pressure degrades mid-flight exactly like a stream of
// singles would.

// maxBatchBody bounds the request body; at MaxBatch=256 a full batch
// is a few KiB, so 8 MiB is generous headroom for large MaxBatch
// configurations without letting a client buffer arbitrary input.
const maxBatchBody = 8 << 20

// batchFunc executes the items of one admitted batch, filling resp.
// A non-nil error fails the whole batch with 400 (used only for
// batch-level problems: bad mode/prune knobs, never for item errors).
type batchFunc func(ctx context.Context, sn *Snapshot, req *BatchRequest, resp *BatchResponse) error

// handleBatch applies the shared batch serving policy: decode once,
// validate batch-level knobs, admit once at weight len(items), then
// hand the items to run.
func (s *Server) handleBatch(op string, run batchFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		mRequests.Add(1)
		mBatchRequests.Add(1)
		sn, _, releaseSnap := s.acquire()
		defer releaseSnap()
		if sn == nil {
			s.writeNotReady(w)
			return
		}
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, "batch endpoints accept POST only")
			return
		}

		var req BatchRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody))
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad batch body: %v", err))
			return
		}
		n := len(req.Items)
		if n == 0 {
			writeError(w, http.StatusBadRequest, "empty batch")
			return
		}
		if n > s.cfg.MaxBatch {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("batch of %d items exceeds the %d-item limit", n, s.cfg.MaxBatch))
			return
		}
		if req.Mode == "" {
			req.Mode = ModeAuto
		}
		if req.Mode != ModeAuto && req.Mode != ModeExact && req.Mode != ModeSketch && req.Mode != ModePrune {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad mode %q", req.Mode))
			return
		}
		if req.TimeoutMS < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad timeout_ms %d", req.TimeoutMS))
			return
		}
		timeout := s.cfg.DefaultTimeout
		if req.TimeoutMS > 0 {
			timeout = min(time.Duration(req.TimeoutMS)*time.Millisecond, s.cfg.MaxTimeout)
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()

		release, status := s.admit(ctx, n)
		switch status {
		case admitShed:
			mShed.Add(1)
			w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
			writeError(w, http.StatusServiceUnavailable, "server saturated, retry later")
			return
		case admitTimeout:
			mTimedOut.Add(1)
			writeError(w, http.StatusGatewayTimeout, "deadline expired while queued")
			return
		}
		defer release()

		if s.cfg.Hook != nil {
			if err := s.cfg.Hook("batch/" + op); err != nil {
				writeError(w, http.StatusInternalServerError, err.Error())
				return
			}
		}
		mBatchItems.Add(int64(n))

		resp := &BatchResponse{Items: make([]json.RawMessage, n)}
		if err := run(ctx, sn, &req, resp); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

// itemHook runs the test-only per-item fault hook.
func (s *Server) itemHook(op string, item int) error {
	if s.cfg.ItemHook == nil {
		return nil
	}
	return s.cfg.ItemHook(op, item)
}

// finishItem records one item outcome: res marshaled into slot i on
// success, an errorBody — with the same message the single-query
// endpoint would have sent — on failure.
func (resp *BatchResponse) finishItem(i int, res any, err error) {
	if err == nil {
		data, merr := json.Marshal(res)
		if merr != nil {
			err = merr
		} else {
			resp.Items[i] = data
			resp.Served++
			mServed.Add(1)
			if degradedItem(res) {
				resp.Degraded++
			}
			return
		}
	}
	msg := err.Error()
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		msg = "deadline expired mid-computation"
		mTimedOut.Add(1)
	}
	data, _ := json.Marshal(errorBody{Error: msg})
	resp.Items[i] = data
	resp.Failed++
	mBatchItemErrors.Add(1)
}

func degradedItem(res any) bool {
	switch r := res.(type) {
	case *DistanceResult:
		return r.Degraded
	case *NearestResult:
		return r.Degraded
	case *AssignResult:
		return r.Degraded
	}
	return false
}

// batchPrune resolves the batch-level prune knobs and the snapshot's
// memoized checkpoint plan ONCE for every item in the batch (single
// queries re-resolve per request).
func batchPrune(sn *Snapshot, req *BatchRequest) (*prune.Plan, float64, error) {
	if req.Mode != ModePrune {
		return nil, 0, nil
	}
	epsilon := DefaultPruneEpsilon
	if req.Epsilon != nil {
		if !(*req.Epsilon >= 0) {
			return nil, 0, fmt.Errorf("bad epsilon %v (want a number ≥ 0)", *req.Epsilon)
		}
		epsilon = *req.Epsilon
	}
	delta := DefaultPruneDelta
	if req.Delta != nil {
		if !(*req.Delta > 0) || *req.Delta >= 1 {
			return nil, 0, fmt.Errorf("bad delta %v (want a number in (0, 1))", *req.Delta)
		}
		delta = *req.Delta
	}
	plan, err := sn.planFor(delta)
	if err != nil {
		return nil, 0, err
	}
	return plan, epsilon, nil
}

// batchDistance answers POST /v1/batch/distance. Sketch-tier items are
// evaluated through the lane-major batch kernel (one pass over the k
// sketch lanes for all items together); exact-tier items run the same
// per-item path as GET /v1/distance, including its mid-computation
// sketch fallback.
func (s *Server) batchDistance(ctx context.Context, sn *Snapshot, req *BatchRequest, resp *BatchResponse) error {
	if req.Mode == ModePrune {
		return fmt.Errorf("mode %q is not supported for distance queries (nearest and assign only)", ModePrune)
	}
	type ditem struct {
		a, b         table.Rect
		mode, reason string
	}
	items := make([]ditem, len(req.Items))
	kernel := make([]int, 0, len(req.Items)) // indices routed to the batch kernel
	for i, it := range req.Items {
		if err := s.itemHook("distance", i); err != nil {
			resp.finishItem(i, nil, err)
			continue
		}
		a, err := ParseRect(it.A)
		if err == nil {
			items[i].b, err = ParseRect(it.B)
		}
		if err == nil {
			items[i].a = a
			if err = sn.validRect(a); err == nil {
				err = sn.validRect(items[i].b)
			}
		}
		if err != nil {
			resp.finishItem(i, nil, err)
			continue
		}
		// Per-item tier decision, same instant-by-instant policy as a
		// stream of single queries.
		items[i].mode, items[i].reason = s.tier(ctx, req.Mode)
		b := items[i].b
		if items[i].mode == ModeSketch && a.Rows == b.Rows && a.Cols == b.Cols {
			kernel = append(kernel, i)
		}
	}

	// One lane-major kernel pass over all sketch-tier items. If the
	// kernel rejects the batch (e.g. an unsketchable rect), fall back
	// to the per-item path so that item fails with exactly the message
	// its single query would have produced.
	if len(kernel) > 0 {
		as := make([]table.Rect, len(kernel))
		bs := make([]table.Rect, len(kernel))
		for j, i := range kernel {
			as[j], bs[j] = items[i].a, items[i].b
		}
		ds, err := sn.SketchDistanceBatch(as, bs, make([]float64, len(kernel)))
		if err == nil {
			for j, i := range kernel {
				r := items[i].reason
				resp.finishItem(i, &DistanceResult{
					Distance: ds[j], Tier: TierSketch,
					Degraded: r == ReasonLoad || r == ReasonDeadline, Reason: r,
				}, nil)
			}
		}
	}

	for i := range items {
		if resp.Items[i] != nil { // failed, or settled by the kernel
			continue
		}
		res, err := s.itemDistance(ctx, sn, items[i].a, items[i].b, items[i].mode, items[i].reason)
		resp.finishItem(i, res, err)
	}
	return nil
}

// batchNearest answers POST /v1/batch/nearest: the prune plan resolves
// once, then every item runs the same path as GET /v1/nearest.
func (s *Server) batchNearest(ctx context.Context, sn *Snapshot, req *BatchRequest, resp *BatchResponse) error {
	plan, epsilon, err := batchPrune(sn, req)
	if err != nil {
		return err
	}
	for i, it := range req.Items {
		if err := s.itemHook("nearest", i); err != nil {
			resp.finishItem(i, nil, err)
			continue
		}
		q, err := ParseRect(it.Q)
		if err != nil {
			resp.finishItem(i, nil, err)
			continue
		}
		mode, reason := s.tier(ctx, req.Mode)
		res, err := s.itemNearest(ctx, sn, q, plan, epsilon, mode, reason)
		resp.finishItem(i, res, err)
	}
	return nil
}

// batchAssign answers POST /v1/batch/assign, mirroring batchNearest.
func (s *Server) batchAssign(ctx context.Context, sn *Snapshot, req *BatchRequest, resp *BatchResponse) error {
	plan, epsilon, err := batchPrune(sn, req)
	if err != nil {
		return err
	}
	for i, it := range req.Items {
		if err := s.itemHook("assign", i); err != nil {
			resp.finishItem(i, nil, err)
			continue
		}
		q, err := ParseRect(it.Q)
		if err != nil {
			resp.finishItem(i, nil, err)
			continue
		}
		mode, reason := s.tier(ctx, req.Mode)
		res, err := s.itemAssign(ctx, sn, q, plan, epsilon, mode, reason)
		resp.finishItem(i, res, err)
	}
	return nil
}
