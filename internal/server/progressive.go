package server

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/prune"
	"repro/internal/table"
)

// Plan returns the snapshot's confidence-margin prune.Plan for the
// given total failure budget delta (memoized per snapshot) — the plan
// to hand ProgressiveNearest / ProgressiveAssign for mode=prune
// semantics outside the HTTP layer (benchmarks, embedding callers).
func (sn *Snapshot) Plan(delta float64) (*prune.Plan, error) { return sn.planFor(delta) }

// planFor memoizes the confidence-margin prune.Plan for one delta. The
// plan depends only on the pool's (p, k, estimator) — fixed per
// snapshot — so the cache key is delta alone. Safe for concurrent use;
// a losing racer simply recomputes the identical immutable plan.
func (sn *Snapshot) planFor(delta float64) (*prune.Plan, error) {
	sn.planMu.Lock()
	defer sn.planMu.Unlock()
	if pl, ok := sn.plans[delta]; ok {
		return pl, nil
	}
	pl, err := prune.NewPlan(sn.pool.P(), sn.pool.K(), sn.pool.Estimator(), 0, delta)
	if err != nil {
		return nil, err
	}
	if sn.plans == nil {
		sn.plans = make(map[float64]*prune.Plan)
	}
	sn.plans[delta] = pl
	return pl, nil
}

// nearestSource assembles the progressive engine's view of the tile
// grid for query q: the precomputed per-tile pool sketches, q's own
// compound sketch, and exact row power sums read straight from the
// table. q's own grid position (if it is one) is skipped, mirroring
// ExactNearest.
func (sn *Snapshot) nearestSource(q table.Rect, qsk []float64) prune.Source {
	skip := -1
	for i, t := range sn.tiles {
		if t == q {
			skip = i
			break
		}
	}
	return prune.Source{
		K: sn.pool.K(), N: len(sn.tiles), QSketch: qsk,
		Sketch:        func(i int) []float64 { return sn.sketches[i] },
		CompoundSlack: sn.compoundSlack,
		Rows:          q.Rows, Cols: q.Cols,
		RowPowSum: func(i, r int) float64 {
			return sn.lp.DistPowSum(sn.rectRow(sn.tiles[i], r), sn.rectRow(q, r))
		},
		Estimator: sn.pool.Estimator(), Scale: sn.pool.Scale(),
		Skip: skip,
	}
}

// ProgressiveNearest answers the nearest-tile query through the
// coarse-to-fine progressive scan. plan == nil selects the exact
// margin: the answer (index, distance, and therefore response bytes)
// is provably identical to ExactNearest at any worker count. A non-nil
// plan enables confidence-margin elimination at the plan's delta with
// epsilon extra screen headroom; the true nearest tile is returned
// with probability ≥ 1 − delta.
func (sn *Snapshot) ProgressiveNearest(ctx context.Context, q table.Rect, workers int, plan *prune.Plan, epsilon float64) (int, float64, prune.Stats, error) {
	if err := sn.checkTileSized(q); err != nil {
		return 0, 0, prune.Stats{}, err
	}
	bq := sn.getSketchBuf()
	defer sn.putSketchBuf(bq)
	qsk, err := sn.pool.Sketch(q, *bq)
	if err != nil {
		return 0, 0, prune.Stats{}, err
	}
	src := sn.nearestSource(q, qsk)
	idx, sum, stats, err := prune.Nearest(ctx, src, prune.Config{
		Plan: plan, Epsilon: epsilon, Workers: workers,
	})
	if err != nil {
		if errors.Is(err, prune.ErrNoCandidates) {
			// The same degenerate grid makes ExactNearest fail; keep the
			// wire-visible message identical.
			err = fmt.Errorf("no candidate tile for %v", q)
		}
		return 0, 0, stats, err
	}
	return idx, math.Pow(sum, 1/sn.lp.Value()), stats, nil
}

// ProgressiveAssign is ProgressiveNearest over the cluster medoids:
// exact-margin answers are identical to ExactAssign, confidence-margin
// answers return the true nearest medoid with probability ≥ 1 − delta.
func (sn *Snapshot) ProgressiveAssign(ctx context.Context, q table.Rect, workers int, plan *prune.Plan, epsilon float64) (cluster, medoid int, d float64, stats prune.Stats, err error) {
	if err := sn.checkAssign(q); err != nil {
		return 0, 0, 0, prune.Stats{}, err
	}
	bq := sn.getSketchBuf()
	defer sn.putSketchBuf(bq)
	qsk, err := sn.pool.Sketch(q, *bq)
	if err != nil {
		return 0, 0, 0, prune.Stats{}, err
	}
	src := prune.Source{
		K: sn.pool.K(), N: len(sn.medoidRects), QSketch: qsk,
		Sketch:        func(c int) []float64 { return sn.sketches[sn.medoids[c]] },
		CompoundSlack: sn.compoundSlack,
		Rows:          q.Rows, Cols: q.Cols,
		RowPowSum: func(c, r int) float64 {
			return sn.lp.DistPowSum(sn.rectRow(sn.medoidRects[c], r), sn.rectRow(q, r))
		},
		Estimator: sn.pool.Estimator(), Scale: sn.pool.Scale(),
		Skip: -1, // assignment never excludes a medoid, even q's own tile
	}
	c, sum, stats, err := prune.Nearest(ctx, src, prune.Config{
		Plan: plan, Epsilon: epsilon, Workers: workers,
	})
	if err != nil {
		return 0, 0, 0, stats, err
	}
	return c, sn.medoids[c], math.Pow(sum, 1/sn.lp.Value()), stats, nil
}
