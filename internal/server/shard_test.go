// Tests of the shard-side scatter-gather surface: /v1/shardinfo and
// the sketch sub-query endpoints a coordinator fans out to, plus the
// generation-echo invariant that keeps a fan-out consistent while
// Swap runs concurrently.
package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/table"
	"repro/internal/workload"
)

func postJSON(t *testing.T, url string, in any, wantCode int, out any) []byte {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	raw.ReadFrom(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("POST %s: status %d, want %d (body %s)", url, resp.StatusCode, wantCode, raw.String())
	}
	if out != nil {
		if err := json.Unmarshal(raw.Bytes(), out); err != nil {
			t.Fatalf("POST %s: bad JSON %q: %v", url, raw.String(), err)
		}
	}
	return raw.Bytes()
}

func TestShardInfo(t *testing.T) {
	sn := snap(t)
	_, ts := newTestServer(t, server.Config{})

	var info server.ShardInfo
	getJSON(t, ts.URL+"/v1/shardinfo", 200, &info)
	if !info.Ready {
		t.Fatalf("ready server reports Ready=false: %+v", info)
	}
	if info.BaseCol != 0 || info.Rows != 64 || info.Cols != 64 ||
		info.TileRows != 8 || info.TileCols != 8 || info.Tiles != 64 || info.Clusters != 4 {
		t.Errorf("geometry: %+v", info)
	}
	pool := sn.Pool()
	if info.P != pool.P() || info.K != pool.K() || info.Seed != pool.Seed() ||
		info.Estimator != pool.Estimator().String() {
		t.Errorf("sketch params: got %+v, want p=%v k=%d seed=%d est=%s",
			info, pool.P(), pool.K(), pool.Seed(), pool.Estimator())
	}
	if info.Generation == 0 {
		t.Errorf("generation not echoed: %+v", info)
	}
}

func TestShardEndpointsWhileBooting(t *testing.T) {
	s, err := server.New(nil, server.Config{})
	if err != nil {
		t.Fatalf("New(nil): %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var info server.ShardInfo
	getJSON(t, ts.URL+"/v1/shardinfo", 200, &info)
	if info.Ready {
		t.Errorf("booting server reports Ready=true")
	}
	code, hdr, _ := get(t, ts.URL+"/v1/sketch?rect=0,0,8,8")
	if code != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Errorf("booting sketch: status %d, Retry-After %q", code, hdr.Get("Retry-After"))
	}
}

func TestSketchSubquery(t *testing.T) {
	sn := snap(t)
	_, ts := newTestServer(t, server.Config{})

	rect := table.Rect{R0: 8, C0: 16, Rows: 8, Cols: 8}
	want, err := sn.Pool().Sketch(rect, nil)
	if err != nil {
		t.Fatalf("Pool.Sketch: %v", err)
	}
	var res server.SketchResult
	getJSON(t, ts.URL+"/v1/sketch?rect="+server.FormatRect(rect), 200, &res)
	if len(res.Sketch) != len(want) {
		t.Fatalf("sketch has %d lanes, want %d", len(res.Sketch), len(want))
	}
	for i := range want {
		if res.Sketch[i] != want[i] {
			t.Fatalf("lane %d: %v != %v", i, res.Sketch[i], want[i])
		}
	}
	if !res.Exact != !sn.Pool().IsExact(rect) {
		t.Errorf("Exact=%v, pool says %v", res.Exact, sn.Pool().IsExact(rect))
	}
	if res.Generation == 0 {
		t.Errorf("generation not echoed")
	}

	code, _, _ := get(t, ts.URL+"/v1/sketch?rect=0,0,200,200")
	if code != http.StatusBadRequest {
		t.Errorf("out-of-bounds rect: status %d, want 400", code)
	}
}

// TestSketchNearestSubquery checks the owner-shard round trip a
// coordinator performs: sketch the query tile locally, post it back
// with Exclude=the tile itself, and land on the same answer the
// public /v1/nearest?mode=sketch endpoint computes in one hop.
func TestSketchNearestSubquery(t *testing.T) {
	sn := snap(t)
	_, ts := newTestServer(t, server.Config{})

	q := table.Rect{R0: 16, C0: 24, Rows: 8, Cols: 8}
	qsk, err := sn.Pool().Sketch(q, nil)
	if err != nil {
		t.Fatalf("Pool.Sketch: %v", err)
	}
	var want server.NearestResult
	getJSON(t, fmt.Sprintf("%s/v1/nearest?q=%s&mode=sketch", ts.URL, server.FormatRect(q)), 200, &want)

	var best server.SketchBest
	postJSON(t, ts.URL+"/v1/sketch/nearest", &server.SketchQueryRequest{
		Sketch: qsk, Exclude: server.FormatRect(q),
	}, 200, &best)
	if best.Tile != want.Tile || best.Distance != want.Distance || best.Rect != want.Rect {
		t.Errorf("sub-query best (%d, %v, %s) != /v1/nearest (%d, %v, %s)",
			best.Tile, best.Distance, best.Rect, want.Tile, want.Distance, want.Rect)
	}
}

func TestSketchAssignSubquery(t *testing.T) {
	sn := snap(t)
	_, ts := newTestServer(t, server.Config{})

	q := table.Rect{R0: 40, C0: 8, Rows: 8, Cols: 8}
	qsk, err := sn.Pool().Sketch(q, nil)
	if err != nil {
		t.Fatalf("Pool.Sketch: %v", err)
	}
	var want server.AssignResult
	getJSON(t, fmt.Sprintf("%s/v1/assign?q=%s&mode=sketch", ts.URL, server.FormatRect(q)), 200, &want)

	var best server.SketchBest
	postJSON(t, ts.URL+"/v1/sketch/assign", &server.SketchQueryRequest{Sketch: qsk}, 200, &best)
	if best.Cluster != want.Cluster || best.Medoid != want.Medoid || best.Distance != want.Distance {
		t.Errorf("sub-query best (%d, %d, %v) != /v1/assign (%d, %d, %v)",
			best.Cluster, best.Medoid, best.Distance, want.Cluster, want.Medoid, want.Distance)
	}
}

func TestSketchSubqueryValidation(t *testing.T) {
	sn := snap(t)
	_, ts := newTestServer(t, server.Config{})
	k := sn.Pool().K()

	// GET on a POST endpoint.
	code, hdr, _ := get(t, ts.URL+"/v1/sketch/nearest")
	if code != http.StatusMethodNotAllowed || hdr.Get("Allow") != http.MethodPost {
		t.Errorf("GET sketch/nearest: status %d, Allow %q", code, hdr.Get("Allow"))
	}
	// Wrong lane count.
	postJSON(t, ts.URL+"/v1/sketch/nearest", &server.SketchQueryRequest{
		Sketch: make([]float64, k-1),
	}, http.StatusBadRequest, nil)
	// Non-finite entries arrive as JSON strings and fail decoding, so
	// hand-build a body with a huge-but-parseable value instead: the
	// finite check is about NaN/Inf produced by 1e309-style overflow.
	body := []byte(fmt.Sprintf(`{"sketch": [1e309%s]}`, bytes.Repeat([]byte(", 0"), k-1)))
	resp, err := http.Post(ts.URL+"/v1/sketch/nearest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("overflowing sketch entry: status %d, want 400", resp.StatusCode)
	}
}

// TestShardGenerationConsistency is the Swap-vs-fan-out race check: a
// coordinator that reads chunk sketches while the shard republishes
// must be able to detect mixed snapshots through the generation echo.
// The invariant under test: every answer's sketch bytes match the
// snapshot its echoed generation names — a handler resolves the
// (snapshot, generation) pair exactly once, never once per field.
func TestShardGenerationConsistency(t *testing.T) {
	snapA := snap(t)
	tbB := workload.Random(64, 64, 100, 99) // different data, same geometry
	poolB, err := core.NewPool(tbB, 1, 64, 42, core.PoolOptions{
		MinLogRows: 2, MaxLogRows: 3, MinLogCols: 2, MaxLogCols: 3,
	})
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	snapB, err := server.BuildSnapshot(context.Background(), tbB, poolB, server.SnapshotConfig{
		TileRows: 8, TileCols: 8, Clusters: 4, Seed: 42,
	})
	if err != nil {
		t.Fatalf("BuildSnapshot: %v", err)
	}

	s, ts := newTestServer(t, server.Config{MaxInflight: 32})
	rect := table.Rect{R0: 0, C0: 0, Rows: 8, Cols: 8}
	skA, err := snapA.Pool().Sketch(rect, nil)
	if err != nil {
		t.Fatalf("sketch A: %v", err)
	}
	skB, err := snapB.Pool().Sketch(rect, nil)
	if err != nil {
		t.Fatalf("sketch B: %v", err)
	}
	if floatsEq(skA, skB) {
		t.Fatal("fixture tables produced identical sketches; the test can't discriminate")
	}

	// Swaps alternate B, A, B, A...; generations are assigned
	// sequentially from this goroutine, so generation g0+i names
	// snapB when i is odd and snapA when i is even.
	g0 := s.Generation()
	const swaps = 40
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 1; i <= swaps; i++ {
			if i%2 == 1 {
				s.Swap(snapB)
			} else {
				s.Swap(snapA)
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				resp, err := http.Get(ts.URL + "/v1/sketch?rect=" + server.FormatRect(rect))
				if err != nil {
					errs <- err
					return
				}
				var res server.SketchResult
				err = json.NewDecoder(resp.Body).Decode(&res)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				want := skA
				if (res.Generation-g0)%2 == 1 {
					want = skB
				}
				if !floatsEq(res.Sketch, want) {
					errs <- fmt.Errorf("generation %d answered with the other snapshot's sketch", res.Generation)
					return
				}
			}
		}()
	}
	wg.Wait()
	<-done
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if got := s.Generation(); got != g0+swaps {
		t.Fatalf("generation %d after %d swaps from %d", got, swaps, g0)
	}
}

func floatsEq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
