package server

import "expvar"

// Process-global serving counters, published on /debug/vars. expvar
// registration is once-per-process, so the counters aggregate across
// server instances (tests assert deltas, not absolutes).
var (
	mRequests = expvar.NewInt("tabmine_requests_total")
	mServed   = expvar.NewInt("tabmine_requests_served")
	mShed     = expvar.NewInt("tabmine_requests_shed")
	mDegraded = expvar.NewInt("tabmine_requests_degraded")
	mTimedOut = expvar.NewInt("tabmine_requests_timedout")
	mReloads  = expvar.NewInt("tabmine_snapshot_reloads")
)

// Stats is a point-in-time read of the serving counters.
type Stats struct {
	Requests int64 // queries received (before admission)
	Served   int64 // 2xx answers
	Shed     int64 // 503s from a full admission queue
	Degraded int64 // sketch-tier answers to auto queries (load/deadline)
	TimedOut int64 // 504s (deadline expired queued or mid-computation)
	Reloads  int64 // snapshot swaps
}

// ReadStats samples the process-global counters.
func ReadStats() Stats {
	return Stats{
		Requests: mRequests.Value(),
		Served:   mServed.Value(),
		Shed:     mShed.Value(),
		Degraded: mDegraded.Value(),
		TimedOut: mTimedOut.Value(),
		Reloads:  mReloads.Value(),
	}
}
