package server

import "expvar"

// Process-global serving counters, published on /debug/vars. expvar
// registration is once-per-process, so the counters aggregate across
// server instances (tests assert deltas, not absolutes).
var (
	mRequests = expvar.NewInt("tabmine_requests_total")
	mServed   = expvar.NewInt("tabmine_requests_served")
	mShed     = expvar.NewInt("tabmine_requests_shed")
	mDegraded = expvar.NewInt("tabmine_requests_degraded")
	mTimedOut = expvar.NewInt("tabmine_requests_timedout")
	mReloads  = expvar.NewInt("tabmine_snapshot_reloads")

	mBatchRequests   = expvar.NewInt("tabmine_batch_requests")
	mBatchItems      = expvar.NewInt("tabmine_batch_items")
	mBatchItemErrors = expvar.NewInt("tabmine_batch_item_errors")

	mShardSubqueries = expvar.NewInt("tabmine_shard_subqueries")

	mIngest         = expvar.NewInt("tabmine_ingest_records")
	mIngestAccepted = expvar.NewInt("tabmine_ingest_accepted")
	mIngestShed     = expvar.NewInt("tabmine_ingest_shed")
	mIngestErrors   = expvar.NewInt("tabmine_ingest_errors")

	mPrunedCandidates  = expvar.NewInt("tabmine_pruned_candidates")
	mPrunedCoordinates = expvar.NewInt("tabmine_pruned_coordinates")
	mScreenSurvivors   = expvar.NewInt("tabmine_screen_survivors")
)

// Stats is a point-in-time read of the serving counters.
type Stats struct {
	Requests int64 // queries received (before admission)
	Served   int64 // 2xx answers
	Shed     int64 // 503s from a full admission queue
	Degraded int64 // sketch-tier answers to auto queries (load/deadline)
	TimedOut int64 // 504s (deadline expired queued or mid-computation)
	Reloads  int64 // snapshot swaps

	BatchRequests   int64 // POST /v1/batch/* requests received
	BatchItems      int64 // items across admitted batches
	BatchItemErrors int64 // items that answered with a per-item error

	ShardSubqueries int64 // /v1/sketch{,/nearest,/assign} sub-queries received

	IngestRecords  int64 // POST /v1/ingest bodies received
	IngestAccepted int64 // records durably appended
	IngestShed     int64 // 503s from a full ingest backlog
	IngestErrors   int64 // malformed records / ingest failures

	PrunedCandidates  int64 // candidates the confidence screen eliminated
	PrunedCoordinates int64 // full-scan coordinates the progressive scans avoided
	ScreenSurvivors   int64 // candidates that reached exact refinement
}

// ReadStats samples the process-global counters.
func ReadStats() Stats {
	return Stats{
		Requests: mRequests.Value(),
		Served:   mServed.Value(),
		Shed:     mShed.Value(),
		Degraded: mDegraded.Value(),
		TimedOut: mTimedOut.Value(),
		Reloads:  mReloads.Value(),

		BatchRequests:   mBatchRequests.Value(),
		BatchItems:      mBatchItems.Value(),
		BatchItemErrors: mBatchItemErrors.Value(),

		ShardSubqueries: mShardSubqueries.Value(),

		IngestRecords:  mIngest.Value(),
		IngestAccepted: mIngestAccepted.Value(),
		IngestShed:     mIngestShed.Value(),
		IngestErrors:   mIngestErrors.Value(),

		PrunedCandidates:  mPrunedCandidates.Value(),
		PrunedCoordinates: mPrunedCoordinates.Value(),
		ScreenSurvivors:   mScreenSurvivors.Value(),
	}
}
