// Black-box tests of the resilient query service. Overload, drain, and
// timeout scenarios are driven deterministically through
// faultinject.Gate — "N requests are in flight" is a synchronization
// fact established with AwaitArrivals, never a sleep-and-hope race.
package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/server"
	"repro/internal/table"
	"repro/internal/workload"
)

// Shared fixture: a 64x64 table with a pool covering dyadic extents
// 4..16 on both axes, 8x8 grid tiles (64 of them), 4 medoid clusters.
// Built once; snapshots are immutable so every test may share it.
var (
	fixOnce sync.Once
	fixTb   *table.Table
	fixSnap *server.Snapshot
	fixErr  error
)

func buildFixture() {
	fixTb = workload.Random(64, 64, 100, 7)
	pool, err := core.NewPool(fixTb, 1, 64, 42, core.PoolOptions{
		MinLogRows: 2, MaxLogRows: 3, MinLogCols: 2, MaxLogCols: 3,
	})
	if err != nil {
		fixErr = err
		return
	}
	fixSnap, fixErr = server.BuildSnapshot(context.Background(), fixTb, pool, server.SnapshotConfig{
		TileRows: 8, TileCols: 8, Clusters: 4, Seed: 42,
	})
}

func snap(t testing.TB) *server.Snapshot {
	t.Helper()
	fixOnce.Do(buildFixture)
	if fixErr != nil {
		t.Fatalf("fixture: %v", fixErr)
	}
	return fixSnap
}

func newTestServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	s, err := server.New(snap(t), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// get performs one GET and returns status, headers, and raw body.
func get(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, resp.Header, body
}

func getJSON(t *testing.T, url string, wantCode int, out any) {
	t.Helper()
	code, _, body := get(t, url)
	if code != wantCode {
		t.Fatalf("GET %s: status %d, want %d (body %s)", url, code, wantCode, body)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", url, body, err)
		}
	}
}

// waitFor polls cond until it holds or the deadline passes. Used only
// for states that are already guaranteed to be reached (e.g. a request
// that has provably entered the admission queue), never to create them.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(500 * time.Microsecond)
	}
}

func TestDistanceTiers(t *testing.T) {
	sn := snap(t)
	_, ts := newTestServer(t, server.Config{})

	a := table.Rect{R0: 0, C0: 0, Rows: 6, Cols: 7}
	b := table.Rect{R0: 32, C0: 20, Rows: 6, Cols: 7}
	ref, err := sn.ExactDistance(context.Background(), a, b, 0)
	if err != nil {
		t.Fatalf("ExactDistance: %v", err)
	}
	q := fmt.Sprintf("a=%s&b=%s", server.FormatRect(a), server.FormatRect(b))

	var exact server.DistanceResult
	getJSON(t, ts.URL+"/v1/distance?"+q+"&mode=exact", 200, &exact)
	if exact.Tier != server.TierExact || exact.Degraded || exact.Reason != "" {
		t.Errorf("exact mode: got %+v", exact)
	}
	if exact.Distance != ref {
		t.Errorf("exact distance %v != reference %v", exact.Distance, ref)
	}

	// Unloaded auto queries take the exact tier.
	var auto server.DistanceResult
	getJSON(t, ts.URL+"/v1/distance?"+q, 200, &auto)
	if auto.Tier != server.TierExact || auto.Distance != ref {
		t.Errorf("auto mode unloaded: got %+v, want exact tier at %v", auto, ref)
	}

	// The sketch tier answers inside the compound-sketch guarantee
	// (Theorem 5/6): (1-eps)D <= est <= 4(1+eps)D. With k=64 the
	// empirical eps is well under 0.5, so [D/2, 6D] is a safe envelope.
	var sk server.DistanceResult
	getJSON(t, ts.URL+"/v1/distance?"+q+"&mode=sketch", 200, &sk)
	if sk.Tier != server.TierSketch || sk.Degraded || sk.Reason != server.ReasonRequested {
		t.Errorf("sketch mode: got %+v", sk)
	}
	if sk.Distance < ref/2 || sk.Distance > 6*ref {
		t.Errorf("sketch estimate %v outside [%v, %v] (exact %v)", sk.Distance, ref/2, 6*ref, ref)
	}
	t.Logf("exact %.4g, sketch %.4g (ratio %.3f)", ref, sk.Distance, sk.Distance/ref)

	for _, bad := range []string{
		"?" + q + "&mode=wat",        // unknown mode
		"?a=0,0,6,7",                 // missing b
		"?a=0,0,6,7&b=nope",          // malformed rect
		"?a=0,0,6,7&b=0,0,7,6",       // mismatched sizes
		"?a=0,0,6,7&b=60,60,6,7",     // b outside the table
		"?" + q + "&timeout_ms=0",    // non-positive timeout
		"?" + q + "&timeout_ms=soon", // malformed timeout
	} {
		if code, _, body := get(t, ts.URL+"/v1/distance"+bad); code != 400 {
			t.Errorf("GET %s: status %d, want 400 (body %s)", bad, code, body)
		}
	}
}

func TestNearestAndAssign(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})

	q := table.Rect{R0: 8, C0: 8, Rows: 8, Cols: 8} // grid tile 9
	for _, mode := range []string{server.ModeExact, server.ModeSketch} {
		var nr server.NearestResult
		getJSON(t, ts.URL+"/v1/nearest?q="+server.FormatRect(q)+"&mode="+mode, 200, &nr)
		if nr.Tile == 9 {
			t.Errorf("mode %s: nearest returned the query tile itself", mode)
		}
		if nr.Tile < 0 || nr.Tile >= 64 || nr.Distance <= 0 {
			t.Errorf("mode %s: implausible nearest %+v", mode, nr)
		}
		if _, err := server.ParseRect(nr.Rect); err != nil {
			t.Errorf("mode %s: bad rect %q: %v", mode, nr.Rect, err)
		}

		var ar server.AssignResult
		getJSON(t, ts.URL+"/v1/assign?q="+server.FormatRect(q)+"&mode="+mode, 200, &ar)
		if ar.Cluster < 0 || ar.Cluster >= 4 || ar.Medoid < 0 || ar.Medoid >= 64 {
			t.Errorf("mode %s: implausible assignment %+v", mode, ar)
		}
	}

	// Query rectangles must match the tile size exactly.
	if code, _, _ := get(t, ts.URL+"/v1/nearest?q=0,0,4,4"); code != 400 {
		t.Errorf("wrong-size nearest: status %d, want 400", code)
	}

	// A snapshot built without clustering answers assign with 404.
	bare, err := server.BuildSnapshot(context.Background(), fixTb, snap(t).Pool(), server.SnapshotConfig{
		TileRows: 8, TileCols: 8, Clusters: 0,
	})
	if err != nil {
		t.Fatalf("BuildSnapshot without clusters: %v", err)
	}
	bs, err := server.New(bare, server.Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	bts := httptest.NewServer(bs.Handler())
	defer bts.Close()
	if code, _, _ := get(t, bts.URL+"/v1/assign?q="+server.FormatRect(q)); code != 404 {
		t.Errorf("assign without clusters: status %d, want 404", code)
	}
}

// TestOverloadShedsAndRetryingClientRecovers is the acceptance scenario:
// saturate MaxInflight+MaxQueue deterministically with a Gate, assert
// the next arrival sheds with 503 + Retry-After, then let the backoff
// client ride the shedding out — its injected Sleep hook opens the gate,
// the queue drains, and the retried query succeeds within its budget.
func TestOverloadShedsAndRetryingClientRecovers(t *testing.T) {
	gate := faultinject.NewGate()
	s, ts := newTestServer(t, server.Config{
		MaxInflight: 2, MaxQueue: 2, DefaultTimeout: 30 * time.Second,
		Hook: func(string) error { gate.Wait(); return nil },
	})
	before := server.ReadStats()

	u := ts.URL + "/v1/distance?a=0,0,8,8&b=8,8,8,8&mode=sketch"
	type reply struct {
		code int
		body string
	}
	parked := make(chan reply, 4)
	for i := 0; i < 4; i++ {
		go func() {
			resp, err := http.Get(u)
			if err != nil {
				parked <- reply{-1, err.Error()}
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			parked <- reply{resp.StatusCode, string(body)}
		}()
	}
	// Two requests hold the execution slots (parked in the gate), two
	// wait in the admission queue: the server is now provably full.
	gate.AwaitArrivals(2)
	waitFor(t, "admission queue to fill", func() bool { return s.Queued() == 2 })

	code, hdr, body := get(t, u)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("saturated probe: status %d, want 503 (body %s)", code, body)
	}
	if ra := hdr.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", ra)
	}
	var eb struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
		t.Errorf("shed body %q: want JSON error", body)
	}

	// The retrying client: its third backoff sleep opens the gate, the
	// parked requests drain, and a later attempt is admitted.
	var sleeps atomic.Int64
	cl, err := client.New(client.Config{
		BaseURL: ts.URL, MaxAttempts: 50, Budget: time.Hour, Seed: 3,
		Sleep: func(ctx context.Context, d time.Duration) error {
			if sleeps.Add(1) == 3 {
				gate.Open()
			}
			time.Sleep(time.Millisecond) // yield so the drain proceeds
			return nil
		},
	})
	if err != nil {
		t.Fatalf("client.New: %v", err)
	}
	res, err := cl.Distance(context.Background(), table.Rect{R0: 0, C0: 0, Rows: 8, Cols: 8},
		table.Rect{R0: 8, C0: 8, Rows: 8, Cols: 8}, server.ModeSketch)
	if err != nil {
		t.Fatalf("retrying client failed: %v", err)
	}
	if res.Tier != server.TierSketch {
		t.Errorf("client answer tier %q, want sketch", res.Tier)
	}
	if sleeps.Load() < 3 {
		t.Errorf("client retried %d times, want >= 3 (it must have been shed)", sleeps.Load())
	}

	for i := 0; i < 4; i++ {
		r := <-parked
		if r.code != 200 {
			t.Errorf("parked request %d: status %d (body %s)", i, r.code, r.body)
		}
	}
	after := server.ReadStats()
	if d := after.Shed - before.Shed; d < 3 {
		t.Errorf("Shed counter advanced by %d, want >= 3 (probe + client retries)", d)
	}
	if d := after.Served - before.Served; d < 5 {
		t.Errorf("Served counter advanced by %d, want >= 5", d)
	}
}

// TestLoadDegradation: with occupancy at the DegradeAt threshold, an
// auto query answers from the sketch tier tagged reason=load.
func TestLoadDegradation(t *testing.T) {
	gate := faultinject.NewGate()
	defer gate.Open()
	s, ts := newTestServer(t, server.Config{
		MaxInflight: 3, MaxQueue: 1, DegradeAt: 0.5, DefaultTimeout: 30 * time.Second,
		Hook: func(op string) error {
			if op == "nearest" {
				gate.Wait()
			}
			return nil
		},
	})
	before := server.ReadStats()

	parked := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			code, _, _ := get(t, ts.URL+"/v1/nearest?q=0,0,8,8&mode=sketch")
			parked <- code
		}()
	}
	gate.AwaitArrivals(2) // 2 of 3 slots held; with the probe itself, occupancy = 3/4

	var res server.DistanceResult
	getJSON(t, ts.URL+"/v1/distance?a=0,0,8,8&b=8,8,8,8", 200, &res)
	if res.Tier != server.TierSketch || !res.Degraded || res.Reason != server.ReasonLoad {
		t.Errorf("loaded auto query: got %+v, want degraded sketch (reason load)", res)
	}
	if d := server.ReadStats().Degraded - before.Degraded; d < 1 {
		t.Errorf("Degraded counter advanced by %d, want >= 1", d)
	}

	gate.Open()
	for i := 0; i < 2; i++ {
		if code := <-parked; code != 200 {
			t.Errorf("parked nearest: status %d", code)
		}
	}
	_ = s
}

// TestDeadlineDegradation: when the remaining deadline cannot fit the
// exact path, auto queries degrade up front (reason=deadline) while
// explicit exact queries still run exactly.
func TestDeadlineDegradation(t *testing.T) {
	_, ts := newTestServer(t, server.Config{
		DefaultTimeout: time.Second, ExactBudget: time.Hour,
	})
	q := "a=0,0,8,8&b=8,8,8,8"

	var res server.DistanceResult
	getJSON(t, ts.URL+"/v1/distance?"+q, 200, &res)
	if res.Tier != server.TierSketch || !res.Degraded || res.Reason != server.ReasonDeadline {
		t.Errorf("tight-deadline auto: got %+v, want degraded sketch (reason deadline)", res)
	}

	getJSON(t, ts.URL+"/v1/distance?"+q+"&mode=exact", 200, &res)
	if res.Tier != server.TierExact || res.Degraded {
		t.Errorf("tight-deadline exact: got %+v, want exact tier", res)
	}
}

// TestExactTimeout: a request whose deadline expires inside its
// admission slot fails with 504 under mode=exact but still answers
// (degraded) under mode=auto.
func TestExactTimeout(t *testing.T) {
	_, ts := newTestServer(t, server.Config{
		Hook: func(string) error { time.Sleep(20 * time.Millisecond); return nil },
	})
	before := server.ReadStats()
	q := "a=0,0,8,8&b=8,8,8,8&timeout_ms=1"

	code, _, body := get(t, ts.URL+"/v1/distance?"+q+"&mode=exact")
	if code != http.StatusGatewayTimeout {
		t.Errorf("expired exact: status %d, want 504 (body %s)", code, body)
	}
	if d := server.ReadStats().TimedOut - before.TimedOut; d < 1 {
		t.Errorf("TimedOut counter advanced by %d, want >= 1", d)
	}

	var res server.DistanceResult
	getJSON(t, ts.URL+"/v1/distance?"+q, 200, &res)
	if res.Tier != server.TierSketch || res.Reason != server.ReasonDeadline {
		t.Errorf("expired auto: got %+v, want sketch (reason deadline)", res)
	}
}

// TestQueueTimeout: a request whose deadline expires while waiting in
// the admission queue answers 504, not a success against a stale slot.
func TestQueueTimeout(t *testing.T) {
	gate := faultinject.NewGate()
	defer gate.Open()
	s, ts := newTestServer(t, server.Config{
		MaxInflight: 1, MaxQueue: 2, DefaultTimeout: 30 * time.Second,
		Hook: func(string) error { gate.Wait(); return nil },
	})
	before := server.ReadStats()

	parked := make(chan int, 1)
	go func() {
		code, _, _ := get(t, ts.URL+"/v1/distance?a=0,0,8,8&b=8,8,8,8&mode=sketch")
		parked <- code
	}()
	gate.AwaitArrivals(1)

	code, _, body := get(t, ts.URL+"/v1/distance?a=0,0,8,8&b=8,8,8,8&timeout_ms=30")
	if code != http.StatusGatewayTimeout {
		t.Errorf("queued past deadline: status %d, want 504 (body %s)", code, body)
	}
	if !strings.Contains(string(body), "queued") {
		t.Errorf("queue-timeout body %q should mention queueing", body)
	}
	if d := server.ReadStats().TimedOut - before.TimedOut; d < 1 {
		t.Errorf("TimedOut counter advanced by %d, want >= 1", d)
	}
	if got := s.Queued(); got != 0 {
		t.Errorf("after queue timeout: Queued() = %d, want 0", got)
	}

	gate.Open()
	if code := <-parked; code != 200 {
		t.Errorf("parked request: status %d", code)
	}
}

// TestDrainByteIdentical: SIGTERM-style shutdown drains in-flight
// requests, and the drained answers are byte-identical to the same
// queries answered before shutdown began. Also asserts no goroutines
// leak once the server is down.
func TestDrainByteIdentical(t *testing.T) {
	startGoroutines := runtime.NumGoroutine()

	gate := faultinject.NewGate()
	var gateOn atomic.Bool
	s, err := server.New(snap(t), server.Config{
		DefaultTimeout: 30 * time.Second,
		Hook: func(string) error {
			if gateOn.Load() {
				gate.Wait()
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()
	base := "http://" + l.Addr().String()

	httpc := &http.Client{Transport: &http.Transport{}}
	fetch := func(path string) (int, []byte) {
		resp, err := httpc.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	paths := []string{
		"/v1/distance?a=0,0,8,8&b=8,8,8,8&mode=exact",
		"/v1/distance?a=0,0,6,7&b=32,20,6,7&mode=sketch",
		"/v1/nearest?q=8,8,8,8",
		"/v1/assign?q=16,0,8,8",
	}
	baseline := make(map[string][]byte, len(paths))
	for _, p := range paths {
		code, body := fetch(p)
		if code != 200 {
			t.Fatalf("baseline GET %s: status %d (body %s)", p, code, body)
		}
		baseline[p] = body
	}

	// Park one request per path mid-flight, then begin the drain.
	gateOn.Store(true)
	type reply struct {
		path string
		code int
		body []byte
	}
	parked := make(chan reply, len(paths))
	for _, p := range paths {
		go func(p string) {
			code, body := fetch(p)
			parked <- reply{p, code, body}
		}(p)
	}
	gate.AwaitArrivals(len(paths))

	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shErr := make(chan error, 1)
	go func() { shErr <- s.Shutdown(shCtx) }()

	// The drain has begun once the listener refuses new connections.
	waitFor(t, "listener to close", func() bool {
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			return true
		}
		conn.Close()
		return false
	})

	gate.Open()
	for range paths {
		r := <-parked
		if r.code != 200 {
			t.Errorf("drained GET %s: status %d (body %s)", r.path, r.code, r.body)
			continue
		}
		if string(r.body) != string(baseline[r.path]) {
			t.Errorf("drained GET %s: body %q differs from pre-drain %q", r.path, r.body, baseline[r.path])
		}
	}
	if err := <-shErr; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Errorf("Serve returned %v, want http.ErrServerClosed", err)
	}

	httpc.CloseIdleConnections()
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > startGoroutines+2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > startGoroutines+2 {
		t.Errorf("goroutine leak after drain: %d running, started with %d", n, startGoroutines)
	}
}

// TestSnapshotSwap: Swap atomically replaces the serving state — the
// same query answers from the new snapshot, and the reload counters
// advance. Distances over a 2x-scaled table double exactly under p=1.
func TestSnapshotSwap(t *testing.T) {
	build := func(scale float64) *server.Snapshot {
		tb := workload.Random(32, 32, 100, 11)
		if scale != 1 {
			if err := table.ScaleRows(tb, fill(32, scale)); err != nil {
				t.Fatalf("ScaleRows: %v", err)
			}
		}
		pool, err := core.NewPool(tb, 1, 32, 5, core.PoolOptions{
			MinLogRows: 2, MaxLogRows: 2, MinLogCols: 2, MaxLogCols: 2,
		})
		if err != nil {
			t.Fatalf("NewPool: %v", err)
		}
		sn, err := server.BuildSnapshot(context.Background(), tb, pool, server.SnapshotConfig{
			TileRows: 8, TileCols: 8, Clusters: 2, Seed: 5,
		})
		if err != nil {
			t.Fatalf("BuildSnapshot: %v", err)
		}
		return sn
	}
	before := server.ReadStats()
	s, err := server.New(build(1), server.Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	u := ts.URL + "/v1/distance?a=0,0,8,8&b=16,16,8,8&mode=exact"
	var d1, d2 server.DistanceResult
	getJSON(t, u, 200, &d1)

	s.Swap(build(2))
	getJSON(t, u, 200, &d2)
	if want := 2 * d1.Distance; !closeTo(d2.Distance, want, 1e-9) {
		t.Errorf("post-swap distance %v, want %v (2x pre-swap %v)", d2.Distance, want, d1.Distance)
	}

	var h server.Health
	getJSON(t, ts.URL+"/healthz", 200, &h)
	if h.Reloads != 1 || h.Rows != 32 || h.Tiles != 16 || h.Clusters != 2 {
		t.Errorf("healthz after swap: %+v", h)
	}
	if d := server.ReadStats().Reloads - before.Reloads; d != 1 {
		t.Errorf("Reloads counter advanced by %d, want 1", d)
	}
}

func fill(n int, v float64) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = v
	}
	return xs
}

func closeTo(got, want, relTol float64) bool {
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	return diff <= relTol*want
}

// TestMetricsAdvanceAndPublish: the expvar counters advance with
// traffic and are published on /debug/vars.
func TestMetricsAdvanceAndPublish(t *testing.T) {
	_, ts := newTestServer(t, server.Config{DegradeAt: 0.01})
	before := server.ReadStats()

	var res server.DistanceResult
	getJSON(t, ts.URL+"/v1/distance?a=0,0,8,8&b=8,8,8,8", 200, &res)
	// DegradeAt 0.01 means the probe's own slot saturates the server:
	// the auto query must have degraded for load.
	if !res.Degraded || res.Reason != server.ReasonLoad {
		t.Fatalf("probe under DegradeAt=0.01: got %+v, want load degradation", res)
	}
	after := server.ReadStats()
	if after.Requests-before.Requests < 1 || after.Served-before.Served < 1 || after.Degraded-before.Degraded < 1 {
		t.Errorf("counters did not advance: before %+v, after %+v", before, after)
	}

	code, _, body := get(t, ts.URL+"/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars: status %d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars: bad JSON: %v", err)
	}
	for _, key := range []string{
		"tabmine_requests_total", "tabmine_requests_served", "tabmine_requests_shed",
		"tabmine_requests_degraded", "tabmine_requests_timedout", "tabmine_snapshot_reloads",
	} {
		if _, ok := vars[key]; !ok {
			t.Errorf("/debug/vars missing %q", key)
		}
	}
}

// TestFlakyHookFails: a Hook failure (the flaky-nth-request fault)
// surfaces as 500, which the retrying client rides out.
func TestFlakyHookFails(t *testing.T) {
	trig := faultinject.FailNth(1)
	_, ts := newTestServer(t, server.Config{
		Hook: func(string) error { return trig() },
	})
	cl, err := client.New(client.Config{
		BaseURL: ts.URL, MaxAttempts: 3, Seed: 9,
		Sleep: func(context.Context, time.Duration) error { return nil },
	})
	if err != nil {
		t.Fatalf("client.New: %v", err)
	}
	res, err := cl.Distance(context.Background(), table.Rect{R0: 0, C0: 0, Rows: 8, Cols: 8},
		table.Rect{R0: 8, C0: 8, Rows: 8, Cols: 8}, server.ModeExact)
	if err != nil {
		t.Fatalf("client through flaky hook: %v", err)
	}
	if res.Tier != server.TierExact {
		t.Errorf("tier %q, want exact", res.Tier)
	}
}

// TestHealthz reports the snapshot shape.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	var h server.Health
	getJSON(t, ts.URL+"/healthz", 200, &h)
	if h.Status != "ok" || h.Rows != 64 || h.Cols != 64 || h.Tiles != 64 || h.Clusters != 4 {
		t.Errorf("healthz: %+v", h)
	}
}
