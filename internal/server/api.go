package server

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/table"
)

// Wire contract shared by the server handlers and internal/client. All
// response bodies are deterministic functions of (snapshot, query): no
// timestamps or per-request identifiers, so the drain tests can assert
// byte-identical answers before and during shutdown.

// Tiers tag every answer with the accuracy path that produced it.
const (
	// TierExact answers from the raw table: the exact Lp distance.
	TierExact = "exact"
	// TierSketch answers from O(k) compound dyadic sketches — the
	// 4(1+ε)-approximation of Theorem 6 — used when requested, when the
	// deadline budget is too tight for the exact path, or when the
	// server is saturated.
	TierSketch = "sketch"
	// TierPruned answers from the progressive confidence-margin scan:
	// exact Lp distances on the candidates surviving the sketch screen,
	// with the true nearest surviving with probability ≥ 1 − delta.
	TierPruned = "pruned"
)

// Degradation reasons reported alongside a sketch-tier answer to an
// "auto" query, so clients know whether re-asking later may yield an
// exact answer.
const (
	// ReasonRequested: the client asked for the sketch tier itself.
	ReasonRequested = "requested"
	// ReasonLoad: admission occupancy was above the degradation
	// threshold, so the exact path was skipped to shed work.
	ReasonLoad = "load"
	// ReasonDeadline: the remaining request deadline could not fit the
	// exact path (up front, or it timed out mid-computation and the
	// O(k) sketch answer was substituted).
	ReasonDeadline = "deadline"
)

// Modes select the accuracy path of a query.
const (
	// ModeAuto (the default) answers exactly when load and deadline
	// allow, degrading to the sketch tier otherwise.
	ModeAuto = "auto"
	// ModeExact insists on the exact tier; under a tight deadline the
	// request fails with 504 instead of degrading.
	ModeExact = "exact"
	// ModeSketch asks for the O(k) sketch tier outright.
	ModeSketch = "sketch"
	// ModePrune (nearest/assign only) asks for the progressive
	// confidence-margin scan tuned by the epsilon and delta query
	// parameters; /v1/distance rejects it with 400.
	ModePrune = "prune"
)

// Margins name the two progressive-scan guarantees in PruneStats.
const (
	// MarginExact: the sketch screen only ordered candidates; the answer
	// is byte-identical to the full exact scan.
	MarginExact = "exact"
	// MarginConfidence: the screen eliminated candidates it certified
	// farther than (1+epsilon)× the best's distance band; the true
	// nearest survives with probability ≥ 1 − delta.
	MarginConfidence = "confidence"
)

// DistanceResult answers /v1/distance.
type DistanceResult struct {
	Distance float64 `json:"distance"`
	Tier     string  `json:"tier"`
	Degraded bool    `json:"degraded"`
	Reason   string  `json:"reason,omitempty"`
}

// PruneStats reports what the progressive scan behind a nearest/assign
// answer evaluated and avoided. Like every response field it is a
// deterministic function of (snapshot, query) — worker count and load
// never change it.
type PruneStats struct {
	Margin  string  `json:"margin"`            // MarginExact or MarginConfidence
	Epsilon float64 `json:"epsilon,omitempty"` // confidence margin only
	Delta   float64 `json:"delta,omitempty"`   // confidence margin only

	Candidates        int   `json:"candidates"`         // entered the sketch screen
	ScreenSurvivors   int   `json:"screen_survivors"`   // reached exact refinement
	PrunedCandidates  int   `json:"pruned_candidates"`  // eliminated by the screen
	RefineAbandoned   int   `json:"refine_abandoned"`   // cut off mid-refinement
	LanesEvaluated    int64 `json:"lanes_evaluated"`    // sketch coordinates consumed
	CellsEvaluated    int64 `json:"cells_evaluated"`    // exact table cells consumed
	CoordinatesTotal  int64 `json:"coordinates_total"`  // full-scan cost of the query
	PrunedCoordinates int64 `json:"pruned_coordinates"` // total − (lanes + cells), ≥ 0
}

// NearestResult answers /v1/nearest: the grid tile nearest to the query
// rectangle (excluding the query's own position).
type NearestResult struct {
	Tile     int         `json:"tile"` // grid tile index
	Rect     string      `json:"rect"` // the tile as "row,col,height,width"
	Distance float64     `json:"distance"`
	Tier     string      `json:"tier"`
	Degraded bool        `json:"degraded"`
	Reason   string      `json:"reason,omitempty"`
	Prune    *PruneStats `json:"prune,omitempty"`
}

// AssignResult answers /v1/assign: the cluster whose medoid tile is
// nearest to the query rectangle.
type AssignResult struct {
	Cluster  int         `json:"cluster"`
	Medoid   int         `json:"medoid"` // grid tile index of the cluster medoid
	Distance float64     `json:"distance"`
	Tier     string      `json:"tier"`
	Degraded bool        `json:"degraded"`
	Reason   string      `json:"reason,omitempty"`
	Prune    *PruneStats `json:"prune,omitempty"`
}

// Health answers /healthz. TileRows/TileCols expose the grid query
// geometry so load generators (tabmine-replay) can synthesize valid
// tile-sized queries without out-of-band configuration.
type Health struct {
	Status   string `json:"status"`
	Rows     int    `json:"rows"`
	Cols     int    `json:"cols"`
	Tiles    int    `json:"tiles"`
	Clusters int    `json:"clusters"`
	TileRows int    `json:"tile_rows"`
	TileCols int    `json:"tile_cols"`
	Reloads  int64  `json:"reloads"` // snapshot swaps since startup
	// Epoch is the shard-map epoch, filled only by a coordinator (a
	// plain server has no fleet and omits it).
	Epoch int64 `json:"epoch,omitempty"`
}

// Ready answers /readyz: 200/"ready" once a snapshot is being served,
// 503/"booting" before (see Server.New on the nil-snapshot boot state).
type Ready struct {
	Status     string `json:"status"`
	Generation int64  `json:"generation,omitempty"`
	// Epoch is the shard-map epoch (coordinator only, like Health.Epoch).
	Epoch int64 `json:"epoch,omitempty"`
}

// errorBody is the JSON shape of every non-2xx answer and of every
// failed batch item.
type errorBody struct {
	Error string `json:"error"`
}

// ShardInfo answers /v1/shardinfo: the cheap self-description a
// scatter-gather coordinator needs to place this server in a shard map
// and to verify that sketches from different shards are mutually
// comparable (equal p, k, seed, estimator — the pool's random matrices
// depend only on those, never on column position, so equal parameters
// make cross-shard sketches merge-compatible).
type ShardInfo struct {
	Ready    bool `json:"ready"` // a snapshot is being served
	BaseCol  int  `json:"base_col"`
	Rows     int  `json:"rows"`
	Cols     int  `json:"cols"`
	TileRows int  `json:"tile_rows"`
	TileCols int  `json:"tile_cols"`
	Tiles    int  `json:"tiles"`
	Clusters int  `json:"clusters"`

	P         float64 `json:"p"`
	K         int     `json:"k"`
	Seed      uint64  `json:"seed"`
	Estimator string  `json:"estimator"` // "median" or "l2"

	// Generation identifies the snapshot this answer (and every query
	// answer carrying a generation echo) came from; it increments on
	// every Swap/Publish. A coordinator uses it to detect stale shards
	// after a publish and to assert that one sub-query never mixes
	// snapshot generations.
	Generation int64 `json:"generation"`
}

// SketchResult answers GET /v1/sketch?rect=...: the O(k) pool sketch of
// one rectangle (in this shard's local coordinates), the raw material a
// coordinator merges by linear lane-wise sum — sketches are linear in
// the data, so the sum of per-shard sketches of disjoint column chunks
// is a sketch of their union.
type SketchResult struct {
	Sketch     []float64 `json:"sketch"`
	Exact      bool      `json:"exact"` // exactly-dyadic rect (full (1±ε) guarantee)
	Generation int64     `json:"generation"`
	// BaseCol echoes this shard's global column offset so a coordinator
	// can fence an answer whose placement moved under a stale shard map
	// (a replacement process on a reused address, a window trim the
	// prober has not seen yet).
	BaseCol int `json:"base_col"`
}

// SketchQueryRequest is the body of POST /v1/sketch/nearest and
// /v1/sketch/assign: a query sketch (produced by this or any
// merge-compatible shard) to scan the local tile grid or medoid set
// against. Exclude, when non-empty, names one local rectangle to skip —
// the query's own tile position on its owner shard.
type SketchQueryRequest struct {
	Sketch  []float64 `json:"sketch"`
	Exclude string    `json:"exclude,omitempty"`
}

// SketchBest answers the sketch sub-query endpoints: the best local
// candidate under the O(k) estimator distance to the posted sketch.
// Tile, Rect, Cluster, and Medoid are in shard-local coordinates; the
// coordinator translates them through the shard map.
type SketchBest struct {
	Tile       int     `json:"tile"`              // nearest: local tile index
	Rect       string  `json:"rect"`              // nearest: local tile rectangle
	Cluster    int     `json:"cluster,omitempty"` // assign: local cluster id
	Medoid     int     `json:"medoid,omitempty"`  // assign: local medoid tile index
	Distance   float64 `json:"distance"`
	Generation int64   `json:"generation"`
	// BaseCol: see SketchResult.BaseCol.
	BaseCol int `json:"base_col"`
}

// BatchItem is one query inside a BatchRequest: a/b for distance
// batches, q for nearest and assign batches, in the same
// "row,col,height,width" encoding the GET endpoints take.
type BatchItem struct {
	A string `json:"a,omitempty"`
	B string `json:"b,omitempty"`
	Q string `json:"q,omitempty"`
}

// BatchRequest is the body of POST /v1/batch/{distance,nearest,assign}.
// Mode, timeout, and the prune knobs are batch-level: the whole batch
// is decoded once, admitted once (at weight len(items)), and — in
// ModePrune — resolves its checkpoint plan once. Tier decisions remain
// per item, so an auto batch can degrade mid-flight.
type BatchRequest struct {
	// Mode is the accuracy mode applied to every item (default auto).
	Mode string `json:"mode,omitempty"`
	// TimeoutMS bounds the whole batch (default DefaultTimeout, capped
	// at MaxTimeout), like the timeout_ms query parameter.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Epsilon and Delta tune mode=prune (defaults DefaultPruneEpsilon /
	// DefaultPruneDelta).
	Epsilon *float64 `json:"epsilon,omitempty"`
	Delta   *float64 `json:"delta,omitempty"`

	Items []BatchItem `json:"items"`
}

// BatchResponse answers /v1/batch/*. Items[i] is either the exact JSON
// object the corresponding single-query GET endpoint would return for
// item i (byte-identical under equal load), or an errorBody when that
// item alone failed — one malformed item never fails its batch.
type BatchResponse struct {
	Items    []json.RawMessage `json:"items"`
	Served   int               `json:"served"`   // items answered
	Failed   int               `json:"failed"`   // items that returned errors
	Degraded int               `json:"degraded"` // items answered degraded (load/deadline)
}

// FormatRect renders a rectangle in the query-parameter encoding
// "row,col,height,width" accepted by ParseRect.
func FormatRect(r table.Rect) string {
	return fmt.Sprintf("%d,%d,%d,%d", r.R0, r.C0, r.Rows, r.Cols)
}

// ParseRect parses the "row,col,height,width" encoding.
func ParseRect(s string) (table.Rect, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return table.Rect{}, fmt.Errorf("rect %q: want row,col,height,width", s)
	}
	vals := make([]int, 4)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return table.Rect{}, fmt.Errorf("rect %q: %v", s, err)
		}
		vals[i] = v
	}
	return table.Rect{R0: vals[0], C0: vals[1], Rows: vals[2], Cols: vals[3]}, nil
}
