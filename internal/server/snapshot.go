package server

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/lpnorm"
	"repro/internal/parallel"
	"repro/internal/prune"
	"repro/internal/table"
)

// SnapshotConfig parameterizes BuildSnapshot's derived query state.
type SnapshotConfig struct {
	// TileRows, TileCols set the grid tile size /v1/nearest and
	// /v1/assign operate on. Both must be pool-sketchable extents.
	TileRows, TileCols int
	// Clusters is the k of the k-medoids clustering over tile sketches
	// backing /v1/assign. 0 disables clustering (assign answers 404).
	Clusters int
	// Seed drives the clustering initialization.
	Seed uint64
	// Workers bounds goroutines during the build (tile sketching and
	// clustering). 0 means all cores. Results are identical regardless.
	Workers int
}

// Snapshot is the immutable state one server generation answers queries
// from: the table, its dyadic sketch pool, the tile grid with
// precomputed pool sketches, and a medoid clustering of the tiles. All
// methods are safe for concurrent use; the serving path swaps whole
// snapshots atomically (Server.Swap) and never mutates one.
type Snapshot struct {
	tb    *table.Table
	pool  *core.Pool
	lp    lpnorm.P
	sdist func(a, b []float64) float64 // O(k) pool-sketch distance

	grid     *table.Grid
	tiles    []table.Rect
	sketches [][]float64 // pool sketch per tile

	clusters    int
	assign      []int        // tile -> cluster
	medoids     []int        // cluster -> tile index of its medoid
	medoidRects []table.Rect // cluster -> medoid tile rectangle

	// Progressive-pruning state: the worst-case overcount of a tile's
	// pool sketch (1 when tiles are exactly dyadic, Theorem 5's compound
	// slack otherwise) and a memoized prune.Plan per delta. The cache is
	// the one mutable corner of a Snapshot; planFor guards it — plans
	// themselves are immutable and deterministic, so memoization never
	// changes an answer.
	compoundSlack float64
	planMu        sync.Mutex
	plans         map[float64]*prune.Plan

	// skBuf recycles k-length query-sketch buffers across requests, so
	// the sketch-tier and progressive paths allocate O(1) steady-state.
	// Like the plan cache it never changes an answer: buffers are fully
	// overwritten by Pool.Sketch before use and returned afterwards.
	skBuf sync.Pool

	// refs counts who may still read the snapshot: the owner reference
	// BuildSnapshot creates (transferred to the server by Swap) plus one
	// Retain per in-flight request. When it reaches zero the onRelease
	// closers run — segment-mode snapshots release their segstore.View
	// there, which is what keeps a compaction from unmapping bytes a
	// query is still reading. Heap-backed snapshots have no closers and
	// the count is inert.
	refs      atomic.Int64
	onRelease []func()
}

// OnRelease registers fn to run once when the snapshot's reference
// count reaches zero. Must be called before the snapshot is published
// (closers are not synchronized with Retain/Release).
func (sn *Snapshot) OnRelease(fn func()) { sn.onRelease = append(sn.onRelease, fn) }

// Retain adds a reference. The serving path calls it under the
// server's acquire lock; other owners (tests, the ingester) may call it
// any time they already hold a reference.
func (sn *Snapshot) Retain() { sn.refs.Add(1) }

// Release drops a reference, running the onRelease closers at zero.
// Zero is final: the snapshot must not be used afterwards.
func (sn *Snapshot) Release() {
	if n := sn.refs.Add(-1); n > 0 {
		return
	} else if n < 0 {
		panic("server: snapshot reference count went negative")
	}
	for _, fn := range sn.onRelease {
		fn()
	}
}

// getSketchBuf hands out a k-capacity buffer for Pool.Sketch.
func (sn *Snapshot) getSketchBuf() *[]float64 {
	if bp, ok := sn.skBuf.Get().(*[]float64); ok {
		return bp
	}
	buf := make([]float64, sn.pool.K())
	return &buf
}

func (sn *Snapshot) putSketchBuf(bp *[]float64) { sn.skBuf.Put(bp) }

// BuildSnapshot derives the serving state from a table and its sketch
// pool. The pool must have been built over exactly tb (dimensions are
// checked); tb must be finite (non-finite cells are rejected with
// table.ErrNonFinite, satisfying the ingress-hardening contract even
// for tables constructed in process). The context cancels the build —
// tile sketching and clustering poll it through the parallel layer.
func BuildSnapshot(ctx context.Context, tb *table.Table, pool *core.Pool, cfg SnapshotConfig) (*Snapshot, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := table.CheckFinite(tb); err != nil {
		return nil, err
	}
	if pr, pc := pool.TableDims(); pr != tb.Rows() || pc != tb.Cols() {
		return nil, fmt.Errorf("server: pool built over %dx%d, table is %dx%d",
			pr, pc, tb.Rows(), tb.Cols())
	}
	lp, err := lpnorm.NewP(pool.P())
	if err != nil {
		return nil, err
	}
	grid, err := table.NewGrid(tb.Rows(), tb.Cols(), cfg.TileRows, cfg.TileCols)
	if err != nil {
		return nil, err
	}
	sn := &Snapshot{
		tb: tb, pool: pool, lp: lp, sdist: pool.SketchDist(),
		grid: grid, clusters: cfg.Clusters,
	}
	sn.refs.Store(1) // the owner reference; Swap takes it over
	sn.tiles = make([]table.Rect, grid.NumTiles())
	for i := range sn.tiles {
		sn.tiles[i] = grid.Rect(i)
	}
	if err := pool.CanSketch(sn.tiles[0]); err != nil {
		return nil, fmt.Errorf("server: tile size not pool-sketchable: %w", err)
	}
	sn.compoundSlack = 1
	if !pool.IsExact(sn.tiles[0]) {
		// Compound sketches overcount the true distance by at most 4×
		// for any p (Theorem 5: each cell difference appears with
		// multiplicity m ≤ 4, and (Σ mᵢ^p|dᵢ|^p)^(1/p) ≤ 4·(Σ|dᵢ|^p)^(1/p)),
		// and never undercount — the slack the confidence screen must
		// grant before eliminating a candidate.
		sn.compoundSlack = 4
	}

	// Pool sketches per tile: disjoint slots, deterministic at any
	// worker count, cancellable between tiles.
	sn.sketches = make([][]float64, len(sn.tiles))
	if err := parallel.ForCtx(ctx, parallel.Resolve(cfg.Workers), len(sn.tiles), func(i int) {
		sk, err := pool.Sketch(sn.tiles[i], nil)
		if err != nil {
			panic(err) // ruled out by the CanSketch check above
		}
		sn.sketches[i] = sk
	}); err != nil {
		return nil, err
	}

	if cfg.Clusters > 0 {
		workers := cfg.Workers
		if workers == 0 {
			workers = -1 // cluster.Config: negative means all cores
		}
		res, err := cluster.KMedoids(sn.sketches, sn.sdist, cluster.Config{
			K: cfg.Clusters, Seed: cfg.Seed, Init: cluster.InitPlusPlus,
			Workers: workers, Context: ctx,
		})
		if err != nil {
			return nil, fmt.Errorf("server: clustering tiles: %w", err)
		}
		sn.assign = res.Assign
		sn.medoids = make([]int, cfg.Clusters)
		sn.medoidRects = make([]table.Rect, cfg.Clusters)
		for c, cent := range res.Centroids {
			// Medoids are actual points, so the centroid vector matches
			// some tile sketch bit-for-bit; lowest index wins on ties.
			idx := -1
			for i, s := range sn.sketches {
				if floatsEqual(s, cent) {
					idx = i
					break
				}
			}
			if idx < 0 {
				return nil, fmt.Errorf("server: medoid %d not found among tile sketches", c)
			}
			sn.medoids[c] = idx
			sn.medoidRects[c] = sn.tiles[idx]
		}
	}
	return sn, nil
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if math.Float64bits(v) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// Table returns the snapshot's table.
func (sn *Snapshot) Table() *table.Table { return sn.tb }

// Pool returns the snapshot's sketch pool.
func (sn *Snapshot) Pool() *core.Pool { return sn.pool }

// NumTiles returns the grid tile count.
func (sn *Snapshot) NumTiles() int { return len(sn.tiles) }

// Clusters returns the cluster count (0 when clustering is disabled).
func (sn *Snapshot) Clusters() int { return sn.clusters }

// TileRows returns the grid tile height (rows per tile).
func (sn *Snapshot) TileRows() int { return sn.grid.TileRows() }

// TileCols returns the grid tile width (columns per tile).
func (sn *Snapshot) TileCols() int { return sn.grid.TileCols() }

// validRect rejects rectangles outside the table.
func (sn *Snapshot) validRect(r table.Rect) error {
	if !r.In(sn.tb.Rows(), sn.tb.Cols()) {
		return fmt.Errorf("rect %v outside table %dx%d", r, sn.tb.Rows(), sn.tb.Cols())
	}
	return nil
}

// rectRow returns row r of rect as a slice aliasing the table storage.
func (sn *Snapshot) rectRow(rect table.Rect, r int) []float64 {
	off := (rect.R0+r)*sn.tb.Cols() + rect.C0
	return sn.tb.Data()[off : off+rect.Cols]
}

// ExactDistance computes the exact Lp distance between two equal-size
// rectangles, fanning the per-row power sums out over the parallel
// layer: the request deadline propagates as ctx (polled between row
// blocks) and the reduction is worker-count invariant, so answers are
// byte-identical at any worker count or load level.
func (sn *Snapshot) ExactDistance(ctx context.Context, a, b table.Rect, workers int) (float64, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return 0, fmt.Errorf("distance between different-size rects %v and %v", a, b)
	}
	sum, err := parallel.SumCtx(ctx, parallel.Resolve(workers), a.Rows, func(r int) float64 {
		return sn.lp.DistPowSum(sn.rectRow(a, r), sn.rectRow(b, r))
	})
	if err != nil {
		return 0, err
	}
	return math.Pow(sum, 1/sn.lp.Value()), nil
}

// SketchDistance answers the same query from the pool's compound dyadic
// sketches in O(k) — Theorem 6's degraded tier. Scratch comes from the
// snapshot's buffer pool; the estimate is bit-identical to
// Pool.Distance (same sketches, same estimator arithmetic).
func (sn *Snapshot) SketchDistance(a, b table.Rect) (float64, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return 0, fmt.Errorf("core: distance between different-size rects %v and %v", a, b)
	}
	ba, bb := sn.getSketchBuf(), sn.getSketchBuf()
	defer sn.putSketchBuf(ba)
	defer sn.putSketchBuf(bb)
	sa, err := sn.pool.Sketch(a, *ba)
	if err != nil {
		return 0, err
	}
	sb, err := sn.pool.Sketch(b, *bb)
	if err != nil {
		return 0, err
	}
	return sn.sdist(sa, sb), nil
}

// SketchDistanceBatch answers n sketch-tier distance queries in one
// lane-major estimator sweep (core.Pool.DistanceBatch): result i is
// bit-identical to SketchDistance(as[i], bs[i]). Callers validate the
// rects up front; the first invalid pair aborts the batch.
func (sn *Snapshot) SketchDistanceBatch(as, bs []table.Rect, dst []float64) ([]float64, error) {
	return sn.pool.DistanceBatch(as, bs, dst)
}

// ctxStride is how many O(k) sketch comparisons run between context
// polls on the serial scan paths.
const ctxStride = 64

// ExactNearest scans every grid tile (excluding q's own position) for
// the smallest exact Lp distance to q. Per-tile distances land in
// disjoint slots via ForCtx; the lowest-index argmin makes ties
// deterministic.
func (sn *Snapshot) ExactNearest(ctx context.Context, q table.Rect, workers int) (int, float64, error) {
	if err := sn.checkTileSized(q); err != nil {
		return 0, 0, err
	}
	dists := make([]float64, len(sn.tiles))
	if err := parallel.ForCtx(ctx, parallel.Resolve(workers), len(sn.tiles), func(i int) {
		if sn.tiles[i] == q {
			dists[i] = math.Inf(1)
			return
		}
		var sum float64
		for r := 0; r < q.Rows; r++ {
			sum += sn.lp.DistPowSum(sn.rectRow(sn.tiles[i], r), sn.rectRow(q, r))
		}
		dists[i] = sum
	}); err != nil {
		return 0, 0, err
	}
	best := argmin(dists)
	if best < 0 {
		return 0, 0, fmt.Errorf("no candidate tile for %v", q)
	}
	return best, math.Pow(dists[best], 1/sn.lp.Value()), nil
}

// SketchNearest is ExactNearest on the sketch tier: one O(k) compound
// sketch of q, then O(k) estimator evaluations per tile.
func (sn *Snapshot) SketchNearest(ctx context.Context, q table.Rect) (int, float64, error) {
	if err := sn.checkTileSized(q); err != nil {
		return 0, 0, err
	}
	bq := sn.getSketchBuf()
	defer sn.putSketchBuf(bq)
	qsk, err := sn.pool.Sketch(q, *bq)
	if err != nil {
		return 0, 0, err
	}
	return sn.SketchNearestVec(ctx, qsk, &q)
}

// SketchNearestVec is the scan half of SketchNearest, taking the query
// sketch directly: the shard sub-query path (/v1/sketch/nearest) feeds
// it sketches computed by ANOTHER shard, which are comparable to the
// local tile sketches whenever (p, k, seed, estimator) match. exclude,
// when non-nil, skips the one tile at that exact rectangle — the
// query's own position on its owner shard. The scan and tie-break are
// the exact loop SketchNearest always ran, so local callers see
// byte-identical answers.
func (sn *Snapshot) SketchNearestVec(ctx context.Context, qsk []float64, exclude *table.Rect) (int, float64, error) {
	dists := make([]float64, len(sn.tiles))
	for i, tsk := range sn.sketches {
		if i%ctxStride == 0 {
			if err := ctx.Err(); err != nil {
				return 0, 0, err
			}
		}
		if exclude != nil && sn.tiles[i] == *exclude {
			dists[i] = math.Inf(1)
			continue
		}
		dists[i] = sn.sdist(qsk, tsk)
	}
	best := argmin(dists)
	if best < 0 {
		return 0, 0, fmt.Errorf("no candidate tile")
	}
	return best, dists[best], nil
}

// ExactAssign returns the cluster whose medoid tile is nearest to q
// under the exact Lp distance.
func (sn *Snapshot) ExactAssign(ctx context.Context, q table.Rect) (cluster, medoid int, d float64, err error) {
	if err := sn.checkAssign(q); err != nil {
		return 0, 0, 0, err
	}
	dists := make([]float64, len(sn.medoidRects))
	for c, mr := range sn.medoidRects {
		if err := ctx.Err(); err != nil {
			return 0, 0, 0, err
		}
		var sum float64
		for r := 0; r < q.Rows; r++ {
			sum += sn.lp.DistPowSum(sn.rectRow(mr, r), sn.rectRow(q, r))
		}
		dists[c] = sum
	}
	best := argmin(dists)
	return best, sn.medoids[best], math.Pow(dists[best], 1/sn.lp.Value()), nil
}

// SketchAssign is ExactAssign on the sketch tier.
func (sn *Snapshot) SketchAssign(ctx context.Context, q table.Rect) (cluster, medoid int, d float64, err error) {
	if err := sn.checkAssign(q); err != nil {
		return 0, 0, 0, err
	}
	bq := sn.getSketchBuf()
	defer sn.putSketchBuf(bq)
	qsk, err := sn.pool.Sketch(q, *bq)
	if err != nil {
		return 0, 0, 0, err
	}
	return sn.SketchAssignVec(ctx, qsk)
}

// SketchAssignVec is the scan half of SketchAssign, taking the query
// sketch directly (see SketchNearestVec): the nearest local medoid to a
// sketch that may have been computed by a merge-compatible shard.
func (sn *Snapshot) SketchAssignVec(ctx context.Context, qsk []float64) (cluster, medoid int, d float64, err error) {
	if sn.clusters == 0 {
		return 0, 0, 0, errNoClusters
	}
	dists := make([]float64, len(sn.medoids))
	for c, m := range sn.medoids {
		if err := ctx.Err(); err != nil {
			return 0, 0, 0, err
		}
		dists[c] = sn.sdist(qsk, sn.sketches[m])
	}
	best := argmin(dists)
	return best, sn.medoids[best], dists[best], nil
}

func (sn *Snapshot) checkTileSized(q table.Rect) error {
	if err := sn.validRect(q); err != nil {
		return err
	}
	if q.Rows != sn.grid.TileRows() || q.Cols != sn.grid.TileCols() {
		return fmt.Errorf("query rect %v must match the %dx%d tile size",
			q, sn.grid.TileRows(), sn.grid.TileCols())
	}
	return nil
}

func (sn *Snapshot) checkAssign(q table.Rect) error {
	if sn.clusters == 0 {
		return errNoClusters
	}
	return sn.checkTileSized(q)
}

var errNoClusters = fmt.Errorf("snapshot built without clustering")

// argmin returns the lowest index of the smallest value, or -1 when
// every entry is +Inf (no candidates).
func argmin(xs []float64) int {
	best, bestV := -1, math.Inf(1)
	for i, v := range xs {
		if v < bestV {
			best, bestV = i, v
		}
	}
	return best
}
