// White-box tests of the serving policy internals: the mid-flight
// sketch fallback, the admission state machine, and the wire helpers.
package server

import (
	"context"
	"errors"
	"net/url"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/table"
	"repro/internal/workload"
)

// tinySnap builds a minimal snapshot (16x16 table, 4x4 tiles) for
// driving the op functions directly.
func tinySnap(t *testing.T) *Snapshot {
	t.Helper()
	tb := workload.Random(16, 16, 50, 3)
	pool, err := core.NewPool(tb, 1, 16, 2, core.PoolOptions{
		MinLogRows: 2, MaxLogRows: 2, MinLogCols: 2, MaxLogCols: 2,
	})
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	sn, err := BuildSnapshot(context.Background(), tb, pool, SnapshotConfig{
		TileRows: 4, TileCols: 4, Clusters: 2, Seed: 2,
	})
	if err != nil {
		t.Fatalf("BuildSnapshot: %v", err)
	}
	return sn
}

// TestMidflightSketchFallback drives the op functions with a context
// that is already expired: the exact attempt fails mid-computation, and
// an auto query substitutes the O(k) sketch answer on a detached
// context instead of failing — the true mid-flight degradation path.
func TestMidflightSketchFallback(t *testing.T) {
	sn := tinySnap(t)
	s := &Server{cfg: Config{}}
	s.cfg.setDefaults()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()

	vals := url.Values{"a": {"0,0,4,4"}, "b": {"4,4,4,4"}}
	res, err := s.opDistance(ctx, sn, vals, ModeAuto, "")
	if err != nil {
		t.Fatalf("auto distance under expired ctx: %v, want sketch fallback", err)
	}
	dr := res.(*DistanceResult)
	if dr.Tier != TierSketch || !dr.Degraded || dr.Reason != ReasonDeadline {
		t.Errorf("fallback answer: %+v, want degraded sketch (reason deadline)", dr)
	}

	// mode=exact must fail instead of silently degrading.
	if _, err := s.opDistance(ctx, sn, vals, ModeExact, ""); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("exact distance under expired ctx: %v, want DeadlineExceeded", err)
	}

	qv := url.Values{"q": {"4,4,4,4"}}
	res, err = s.opNearest(ctx, sn, qv, ModeAuto, "")
	if err != nil {
		t.Fatalf("auto nearest under expired ctx: %v, want sketch fallback", err)
	}
	if nr := res.(*NearestResult); nr.Tier != TierSketch || nr.Reason != ReasonDeadline {
		t.Errorf("nearest fallback: %+v", nr)
	}

	res, err = s.opAssign(ctx, sn, qv, ModeAuto, "")
	if err != nil {
		t.Fatalf("auto assign under expired ctx: %v, want sketch fallback", err)
	}
	if ar := res.(*AssignResult); ar.Tier != TierSketch || ar.Reason != ReasonDeadline {
		t.Errorf("assign fallback: %+v", ar)
	}
}

func TestSketchFallbackPredicate(t *testing.T) {
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()

	fctx, ok := sketchFallback(expired, context.DeadlineExceeded, "")
	if !ok {
		t.Fatal("auto-exact deadline error should fall back")
	}
	if fctx.Err() != nil {
		t.Errorf("fallback context carries %v, want detached (nil)", fctx.Err())
	}
	if _, ok := sketchFallback(expired, context.DeadlineExceeded, ReasonLoad); ok {
		t.Error("a query already on the sketch tier must not fall back again")
	}
	if _, ok := sketchFallback(expired, errors.New("bad rect"), ""); ok {
		t.Error("non-deadline errors must not fall back")
	}
}

// TestAdmit exercises the admission state machine without HTTP: slots,
// the bounded queue, shedding, and queue-deadline expiry.
func TestAdmit(t *testing.T) {
	s := &Server{cfg: Config{MaxInflight: 1, MaxQueue: 1}}
	s.cfg.setDefaults()
	s.cfg.MaxInflight, s.cfg.MaxQueue = 1, 1
	s.sem = make(chan struct{}, 1)

	release, st := s.admit(context.Background(), 1)
	if st != admitOK {
		t.Fatalf("first admit: %v, want admitOK", st)
	}
	if got := s.occupancy(); got != 0.5 {
		t.Errorf("occupancy with 1/2 used: %v, want 0.5", got)
	}

	// The slot is held: a deadline-bearing arrival waits in the queue
	// until its deadline expires.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, st := s.admit(ctx, 1); st != admitTimeout {
		t.Errorf("queued past deadline: %v, want admitTimeout", st)
	}
	if q := s.Queued(); q != 0 {
		t.Errorf("queue count after expiry: %d, want 0", q)
	}

	// Queue full (simulated via a parked goroutine) -> shed.
	parked := make(chan admitStatus, 1)
	pctx, pcancel := context.WithCancel(context.Background())
	defer pcancel()
	go func() {
		_, st := s.admit(pctx, 1)
		parked <- st
	}()
	for s.Queued() != 1 {
		time.Sleep(100 * time.Microsecond)
	}
	if _, st := s.admit(context.Background(), 1); st != admitShed {
		t.Errorf("arrival beyond queue: %v, want admitShed", st)
	}

	release()
	if st := <-parked; st != admitOK {
		t.Errorf("parked arrival after release: %v, want admitOK", st)
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want string
	}{
		{0, "1"}, {time.Millisecond, "1"}, {time.Second, "1"},
		{1500 * time.Millisecond, "2"}, {3 * time.Second, "3"},
	} {
		if got := retryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}

func TestRectRoundTrip(t *testing.T) {
	r := table.Rect{R0: 3, C0: 5, Rows: 7, Cols: 9}
	got, err := ParseRect(FormatRect(r))
	if err != nil || got != r {
		t.Errorf("round trip: %v, %v", got, err)
	}
	for _, bad := range []string{"", "1,2,3", "1,2,3,4,5", "a,b,c,d"} {
		if _, err := ParseRect(bad); err == nil {
			t.Errorf("ParseRect(%q): want error", bad)
		}
	}
	if _, err := ParseRect(" 1, 2, 3, 4 "); err != nil {
		t.Errorf("ParseRect with spaces: %v", err)
	}
}
