// Tests of the batched query path: the per-item bit-identity property
// (every batch item's bytes equal the single-query endpoint's bytes,
// at any worker count, including under mid-batch degradation),
// weighted admission, per-item error isolation, and counter deltas.
package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/server"
)

// postBatch POSTs a BatchRequest and returns status, headers, and body.
func postBatch(t *testing.T, url string, req *server.BatchRequest) (int, http.Header, []byte) {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal batch: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, resp.Header, body
}

func decodeBatch(t *testing.T, body []byte) *server.BatchResponse {
	t.Helper()
	var br server.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatalf("bad batch response %q: %v", body, err)
	}
	return &br
}

// singleBody fetches the single-query reference bytes for a batch item
// (the GET response body without its trailing newline).
func singleBody(t *testing.T, url string) []byte {
	t.Helper()
	code, _, body := get(t, url)
	if code != 200 {
		t.Fatalf("GET %s: status %d (body %s)", url, code, body)
	}
	return bytes.TrimSuffix(body, []byte("\n"))
}

// TestBatchBitIdentityProperty is the batched-path acceptance: for
// every batch endpoint and every mode, each response item must be
// byte-identical to the corresponding single-query GET answer, at
// workers 1, 2, and GOMAXPROCS. Batches are sized well under the
// degradation threshold so both paths answer from an unloaded server.
func TestBatchBitIdentityProperty(t *testing.T) {
	queries := []string{"8,8,8,8", "3,5,8,8", "48,17,8,8", "8,8,8,8"} // dup on purpose
	pairs := [][2]string{
		{"0,0,8,8", "16,16,8,8"},
		{"1,2,6,7", "30,9,6,7"},
		{"5,5,5,12", "5,40,5,12"},
		{"0,0,8,8", "16,16,8,8"}, // dup on purpose
	}
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		_, ts := newTestServer(t, server.Config{Workers: workers, MaxInflight: 8, MaxQueue: 32})
		for _, mode := range []string{"", server.ModeExact, server.ModeSketch, server.ModePrune} {
			suffix := ""
			if mode != "" {
				suffix = "&mode=" + mode
			}

			if mode != server.ModePrune { // distance rejects prune
				req := &server.BatchRequest{Mode: mode}
				var want [][]byte
				for _, p := range pairs {
					req.Items = append(req.Items, server.BatchItem{A: p[0], B: p[1]})
					want = append(want, singleBody(t, ts.URL+"/v1/distance?a="+p[0]+"&b="+p[1]+suffix))
				}
				code, _, body := postBatch(t, ts.URL+"/v1/batch/distance", req)
				if code != 200 {
					t.Fatalf("workers=%d mode=%q batch distance: status %d (body %s)", workers, mode, code, body)
				}
				br := decodeBatch(t, body)
				if br.Served != len(pairs) || br.Failed != 0 || br.Degraded != 0 {
					t.Fatalf("workers=%d mode=%q distance counts: %+v", workers, mode, br)
				}
				for i := range pairs {
					if !bytes.Equal(br.Items[i], want[i]) {
						t.Errorf("workers=%d mode=%q distance item %d:\n  batch  %s\n  single %s",
							workers, mode, i, br.Items[i], want[i])
					}
				}
			}

			for _, op := range []string{"nearest", "assign"} {
				req := &server.BatchRequest{Mode: mode}
				var want [][]byte
				for _, q := range queries {
					req.Items = append(req.Items, server.BatchItem{Q: q})
					want = append(want, singleBody(t, ts.URL+"/v1/"+op+"?q="+q+suffix))
				}
				code, _, body := postBatch(t, ts.URL+"/v1/batch/"+op, req)
				if code != 200 {
					t.Fatalf("workers=%d mode=%q batch %s: status %d (body %s)", workers, mode, op, code, body)
				}
				br := decodeBatch(t, body)
				if br.Served != len(queries) || br.Failed != 0 {
					t.Fatalf("workers=%d mode=%q %s counts: %+v", workers, mode, op, br)
				}
				for i := range queries {
					if !bytes.Equal(br.Items[i], want[i]) {
						t.Errorf("workers=%d mode=%q %s item %d:\n  batch  %s\n  single %s",
							workers, mode, op, i, br.Items[i], want[i])
					}
				}
			}
		}
		ts.Close()
	}
}

// TestBatchMidFlightDegradation drives the per-item tier decision: a
// batch frozen by the item hook while the server saturates must answer
// its earlier items exact and its later items degraded — each side
// byte-identical to a single query under the same load.
func TestBatchMidFlightDegradation(t *testing.T) {
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		gate1 := faultinject.NewGate() // freezes the probe batch before item 1
		gate2 := faultinject.NewGate() // parks the fat batch on its first item
		s, ts := newTestServer(t, server.Config{
			Workers: workers, MaxInflight: 2, MaxQueue: 8, // degrade at cost ≥ 7.5
			ItemHook: func(op string, item int) error {
				switch {
				case op == "nearest" && item == 1:
					gate1.Wait()
				case op == "assign" && item == 0:
					gate2.Wait()
				}
				return nil
			},
		})

		const q = "3,5,8,8"
		refExact := singleBody(t, ts.URL+"/v1/nearest?q="+q)

		// Probe batch: item 0 runs on an idle server, then the hook
		// freezes it before item 1.
		probeDone := make(chan []byte, 1)
		go func() {
			code, _, body := postBatch(t, ts.URL+"/v1/batch/nearest", &server.BatchRequest{
				Items: []server.BatchItem{{Q: q}, {Q: q}, {Q: q}},
			})
			if code != 200 {
				body = fmt.Appendf(nil, "status %d: %s", code, body)
			}
			probeDone <- body
		}()
		gate1.AwaitArrivals(1)

		// Saturate: a parked 8-item batch holds the second slot with
		// weight 8, pushing occupancy to (3+8)/10 ≥ DegradeAt.
		fatDone := make(chan struct{})
		go func() {
			defer close(fatDone)
			items := make([]server.BatchItem, 8)
			for i := range items {
				items[i] = server.BatchItem{Q: q}
			}
			postBatch(t, ts.URL+"/v1/batch/assign", &server.BatchRequest{Mode: server.ModeSketch, Items: items})
		}()
		gate2.AwaitArrivals(1)
		// Occupancy is now (3 + 8) / (2 + 8) ≥ DegradeAt, so the frozen
		// probe's remaining items degrade when released.
		if occ := float64(s.Inflight()); occ != 2 {
			t.Fatalf("workers=%d: %v slots held, want 2", workers, occ)
		}

		gate1.Open() // items 1, 2 now run saturated → degraded (load)
		probeBody := <-probeDone
		gate2.Open()
		<-fatDone

		var br server.BatchResponse
		if err := json.Unmarshal(probeBody, &br); err != nil {
			t.Fatalf("workers=%d: probe batch response %q: %v", workers, probeBody, err)
		}
		if len(br.Items) != 3 || br.Served != 3 || br.Failed != 0 {
			t.Fatalf("workers=%d: probe counts %+v (body %s)", workers, br, probeBody)
		}
		if !bytes.Equal(br.Items[0], refExact) {
			t.Errorf("workers=%d: item 0 (idle) != single exact answer:\n  batch  %s\n  single %s",
				workers, br.Items[0], refExact)
		}
		if br.Degraded != 2 {
			t.Errorf("workers=%d: degraded count %d, want 2 (body %s)", workers, br.Degraded, probeBody)
		}
		for i := 1; i <= 2; i++ {
			var nr server.NearestResult
			if err := json.Unmarshal(br.Items[i], &nr); err != nil {
				t.Fatalf("workers=%d item %d: %v", workers, i, err)
			}
			if nr.Tier != server.TierSketch || !nr.Degraded || nr.Reason != server.ReasonLoad {
				t.Errorf("workers=%d item %d: tier=%q degraded=%v reason=%q, want sketch/true/load",
					workers, i, nr.Tier, nr.Degraded, nr.Reason)
			}
		}
		// Bit-identity of the degraded items against a single query that
		// degraded the same way: mode=sketch GET differs only in
		// reason=requested, so instead compare against each other — both
		// degraded items are the same query under the same tier, so they
		// must be byte-identical — and against the sketch-tier distance
		// value of a mode=sketch single.
		if !bytes.Equal(br.Items[1], br.Items[2]) {
			t.Errorf("workers=%d: degraded items differ:\n  %s\n  %s", workers, br.Items[1], br.Items[2])
		}
		var sk server.NearestResult
		getJSON(t, ts.URL+"/v1/nearest?q="+q+"&mode=sketch", 200, &sk)
		var d1 server.NearestResult
		if err := json.Unmarshal(br.Items[1], &d1); err != nil {
			t.Fatal(err)
		}
		if d1.Tile != sk.Tile || d1.Distance != sk.Distance || d1.Rect != sk.Rect {
			t.Errorf("workers=%d: degraded answer (%d, %s, %v) != sketch single (%d, %s, %v)",
				workers, d1.Tile, d1.Rect, d1.Distance, sk.Tile, sk.Rect, sk.Distance)
		}
		ts.Close()
	}
}

// TestBatchValidation covers the batch-level rejections and per-item
// error isolation: one bad item yields one errorBody, not a failed
// batch.
func TestBatchValidation(t *testing.T) {
	_, ts := newTestServer(t, server.Config{MaxBatch: 4})

	// Method and body-shape rejections.
	if code, _, _ := get(t, ts.URL+"/v1/batch/nearest"); code != 405 {
		t.Errorf("GET batch endpoint: status %d, want 405", code)
	}
	resp, err := http.Post(ts.URL+"/v1/batch/nearest", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}

	for name, tc := range map[string]*server.BatchRequest{
		"empty":       {},
		"oversized":   {Items: make([]server.BatchItem, 5)},
		"bad mode":    {Mode: "wat", Items: []server.BatchItem{{Q: "8,8,8,8"}}},
		"bad timeout": {TimeoutMS: -1, Items: []server.BatchItem{{Q: "8,8,8,8"}}},
		"bad epsilon": {Mode: server.ModePrune, Epsilon: ptr(-1.0), Items: []server.BatchItem{{Q: "8,8,8,8"}}},
		"bad delta":   {Mode: server.ModePrune, Delta: ptr(1.5), Items: []server.BatchItem{{Q: "8,8,8,8"}}},
		"delta zero":  {Mode: server.ModePrune, Delta: ptr(0.0), Items: []server.BatchItem{{Q: "8,8,8,8"}}},
	} {
		if code, _, body := postBatch(t, ts.URL+"/v1/batch/nearest", tc); code != 400 {
			t.Errorf("%s: status %d, want 400 (body %s)", name, code, body)
		}
	}
	// Prune is rejected for distance batches, batch-level.
	if code, _, body := postBatch(t, ts.URL+"/v1/batch/distance", &server.BatchRequest{
		Mode: server.ModePrune, Items: []server.BatchItem{{A: "0,0,8,8", B: "16,16,8,8"}},
	}); code != 400 {
		t.Errorf("distance prune: status %d, want 400 (body %s)", code, body)
	}

	// Mixed batch: parse error, out-of-bounds rect, and two valid items.
	before := server.ReadStats()
	code, _, body := postBatch(t, ts.URL+"/v1/batch/nearest", &server.BatchRequest{
		Items: []server.BatchItem{
			{Q: "nope"},
			{Q: "8,8,8,8"},
			{Q: "1000,1000,8,8"},
			{Q: "3,5,8,8"},
		},
	})
	if code != 200 {
		t.Fatalf("mixed batch: status %d (body %s)", code, body)
	}
	br := decodeBatch(t, body)
	if br.Served != 2 || br.Failed != 2 {
		t.Fatalf("mixed counts: %+v", br)
	}
	for _, i := range []int{0, 2} {
		var eb struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(br.Items[i], &eb); err != nil || eb.Error == "" {
			t.Errorf("item %d: want errorBody, got %s", i, br.Items[i])
		}
	}
	for _, i := range []int{1, 3} {
		var nr server.NearestResult
		if err := json.Unmarshal(br.Items[i], &nr); err != nil || nr.Rect == "" {
			t.Errorf("item %d: want NearestResult, got %s", i, br.Items[i])
		}
	}
	after := server.ReadStats()
	if d := after.BatchItems - before.BatchItems; d != 4 {
		t.Errorf("tabmine_batch_items advanced %d, want 4", d)
	}
	if d := after.BatchItemErrors - before.BatchItemErrors; d != 2 {
		t.Errorf("tabmine_batch_item_errors advanced %d, want 2", d)
	}
	if d := after.Served - before.Served; d != 2 {
		t.Errorf("tabmine_requests_served advanced %d, want 2", d)
	}
}

// TestBatchWeightedAdmission: a batch pays queue cost equal to its item
// count, so a batch too heavy for the remaining queue budget sheds with
// 503 + Retry-After even though a single query would still be admitted.
func TestBatchWeightedAdmission(t *testing.T) {
	gate := faultinject.NewGate()
	s, ts := newTestServer(t, server.Config{
		MaxInflight: 1, MaxQueue: 4, RetryAfter: 2 * time.Second,
		ItemHook: func(op string, item int) error {
			if op == "assign" {
				gate.Wait()
			}
			return nil
		},
	})

	// Park a batch in the only slot.
	done := make(chan struct{})
	go func() {
		defer close(done)
		postBatch(t, ts.URL+"/v1/batch/assign", &server.BatchRequest{
			Mode: server.ModeSketch, Items: []server.BatchItem{{Q: "8,8,8,8"}},
		})
	}()
	gate.AwaitArrivals(1)

	// A 5-item batch exceeds the queue budget of 4 → shed.
	code, hdr, body := postBatch(t, ts.URL+"/v1/batch/nearest", &server.BatchRequest{
		Items: make([]server.BatchItem, 5),
	})
	if code != 503 {
		t.Fatalf("overweight batch: status %d, want 503 (body %s)", code, body)
	}
	if ra := hdr.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After %q, want \"2\"", ra)
	}
	if s.Queued() != 0 {
		t.Errorf("queued cost %d after shed, want 0", s.Queued())
	}

	// A 4-item batch fits the queue budget exactly: it queues, then
	// completes once the slot frees.
	queuedDone := make(chan int, 1)
	go func() {
		code, _, _ := postBatch(t, ts.URL+"/v1/batch/nearest", &server.BatchRequest{
			Mode: server.ModeSketch,
			Items: []server.BatchItem{
				{Q: "8,8,8,8"}, {Q: "8,8,8,8"}, {Q: "8,8,8,8"}, {Q: "8,8,8,8"},
			},
		})
		queuedDone <- code
	}()
	waitFor(t, "batch to queue at weight 4", func() bool { return s.Queued() == 4 })

	// Now even a single query must shed: queue budget is exhausted.
	if code, _, body := get(t, ts.URL+"/v1/nearest?q=8,8,8,8"); code != 503 {
		t.Errorf("single behind full queue: status %d, want 503 (body %s)", code, body)
	}

	gate.Open()
	<-done
	if code := <-queuedDone; code != 200 {
		t.Errorf("queued batch after release: status %d, want 200", code)
	}
}

func ptr[T any](v T) *T { return &v }
