// Package server is the resilient sketch query service: an HTTP server
// answering distance / nearest-tile / cluster-assign queries against an
// immutable Snapshot (table + dyadic sketch pool), designed around the
// paper's operational premise that an approximate answer now beats an
// exact answer late.
//
// Robustness is the design center:
//
//   - Admission control: at most MaxInflight queries execute while at
//     most MaxQueue wait; beyond that the server sheds immediately with
//     503 + Retry-After instead of queueing unboundedly.
//   - Deadlines: every request carries a budget (DefaultTimeout or the
//     timeout_ms parameter, capped by MaxTimeout) propagated as a
//     context into the parallel exact-computation paths.
//   - Graceful degradation: "auto" queries answer from O(k) compound
//     dyadic sketches — Theorem 6's 4(1+ε) tier — when the server is
//     saturated or the deadline budget cannot fit the exact path, and
//     every answer is tagged with the tier that produced it.
//   - Lifecycle: snapshots swap atomically (Swap, wired to SIGHUP by
//     tabmine-serve) and Shutdown drains in-flight requests.
//
// Answers are deterministic functions of (snapshot, query): the same
// query returns byte-identical bytes at any worker count, load level,
// or drain state.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/prune"
	"repro/internal/table"
)

// Config tunes the serving policy. The zero value gets sensible
// defaults from New.
type Config struct {
	// MaxInflight bounds concurrently executing queries (default 8).
	MaxInflight int
	// MaxQueue bounds queries waiting for an execution slot; arrivals
	// beyond MaxInflight+MaxQueue shed with 503 (default 4×MaxInflight).
	MaxQueue int
	// DefaultTimeout is the per-request deadline when the client sends
	// no timeout_ms parameter (default 2s).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested deadlines (default 30s).
	MaxTimeout time.Duration
	// DegradeAt is the admission occupancy fraction — (executing +
	// queued) / (MaxInflight + MaxQueue) — at or above which "auto"
	// queries skip the exact path (default 0.75).
	DegradeAt float64
	// ExactBudget is the minimum remaining deadline for attempting the
	// exact path on an "auto" query (default 20ms).
	ExactBudget time.Duration
	// RetryAfter is the hint sent with 503 responses (default 1s;
	// rounded up to whole seconds on the wire).
	RetryAfter time.Duration
	// MaxBatch bounds the number of items a single POST /v1/batch/*
	// request may carry (default 256). A batch occupies one execution
	// slot but weighs len(items) against the admission queue budget and
	// the degradation occupancy, so one giant batch cannot starve
	// single-query traffic undetected.
	MaxBatch int
	// Workers bounds the parallel fan-out of exact computations per
	// request. 0 means all cores; answers are identical regardless.
	Workers int
	// ReadHeaderTimeout and WriteTimeout bound slow clients (defaults
	// 10s and 30s).
	ReadHeaderTimeout time.Duration
	WriteTimeout      time.Duration
	// Ingestor, when non-nil, enables POST /v1/ingest: pushed
	// day-column records stream to it and its backlog errors map to
	// 503 + Retry-After. Nil answers /v1/ingest with 404.
	Ingestor Ingestor
	// Hook, when non-nil, runs at the start of query execution (inside
	// the admission slot) with the operation name. A non-nil error
	// fails the request with 500. Tests wire it to faultinject (Gate
	// for deterministic saturation, FailNth for flaky requests); leave
	// nil in production.
	Hook func(op string) error
	// ItemHook, when non-nil, runs before each batch item executes with
	// the operation name and item index. A non-nil error fails that item
	// only, not the batch. Tests wire it to faultinject gates to freeze
	// a batch mid-flight deterministically; leave nil in production.
	ItemHook func(op string, item int) error
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
}

func (c *Config) setDefaults() {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 8
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInflight
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.DegradeAt <= 0 {
		c.DegradeAt = 0.75
	}
	if c.ExactBudget <= 0 {
		c.ExactBudget = 20 * time.Millisecond
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.ReadHeaderTimeout <= 0 {
		c.ReadHeaderTimeout = 10 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// snapState pairs a snapshot with its generation so one atomic load
// observes both: every handler resolves (snapshot, generation) exactly
// once per request, which is what lets sub-query answers echo a
// generation that is guaranteed to match the data they were computed
// from even while Swap runs concurrently.
type snapState struct {
	sn  *Snapshot
	gen int64
}

// Server serves sketch queries over one atomically swappable Snapshot.
type Server struct {
	cfg    Config
	snap   atomic.Pointer[snapState]
	swapMu sync.Mutex // serializes Swap's generation increment
	// snapRefMu orders snapshot retention against Swap: acquire retains
	// under RLock, Swap stores the new state under Lock before releasing
	// the old serving reference — so a request can never retain a
	// snapshot whose count already hit zero (whose mmap-backed lanes a
	// segment store may have unmapped).
	snapRefMu sync.RWMutex
	sem       chan struct{} // execution slots, cap MaxInflight
	// Admission pressure is tracked as weighted cost: a single query
	// weighs 1, a batch weighs its item count. queuedCost is the summed
	// weight waiting for a slot (bounded by MaxQueue), inflightCost the
	// summed weight currently executing.
	queuedCost   atomic.Int64
	inflightCost atomic.Int64
	reloads      atomic.Int64
	// draining marks the lame-duck state: readiness is withdrawn (so
	// coordinators route away) but queries still answer — the handoff
	// window between "stop sending me new work" and process exit.
	draining atomic.Bool
	mux      *http.ServeMux
	hs       *http.Server
}

// New builds a Server answering from snap under cfg's policy. A nil
// snap is the booting state: the server binds and answers /healthz
// (status "booting") and /readyz (503) immediately, sheds every query
// with 503 + Retry-After, and starts serving at the first Swap/Publish —
// the store-mode boot sequence, where resuming the pool takes a while
// and a coordinator must be able to probe "not ready yet" cheaply.
func New(snap *Snapshot, cfg Config) (*Server, error) {
	cfg.setDefaults()
	s := &Server{cfg: cfg, sem: make(chan struct{}, cfg.MaxInflight)}
	if snap != nil {
		snap.Retain() // the serving reference, mirroring Swap
		s.snap.Store(&snapState{sn: snap, gen: 1})
	} else {
		s.snap.Store(&snapState{})
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.Handle("/debug/vars", expvar.Handler())
	s.mux.HandleFunc("/v1/distance", s.wrap("distance", s.opDistance))
	s.mux.HandleFunc("/v1/nearest", s.wrap("nearest", s.opNearest))
	s.mux.HandleFunc("/v1/assign", s.wrap("assign", s.opAssign))
	s.mux.HandleFunc("/v1/batch/distance", s.handleBatch("distance", s.batchDistance))
	s.mux.HandleFunc("/v1/batch/nearest", s.handleBatch("nearest", s.batchNearest))
	s.mux.HandleFunc("/v1/batch/assign", s.handleBatch("assign", s.batchAssign))
	s.mux.HandleFunc("/v1/ingest", s.handleIngest)
	s.mux.HandleFunc("/v1/shardinfo", s.handleShardInfo)
	s.mux.HandleFunc("/v1/sketch", s.wrapSub("sketch", s.subSketch))
	s.mux.HandleFunc("/v1/sketch/nearest", s.wrapSub("sketch/nearest", s.subSketchNearest))
	s.mux.HandleFunc("/v1/sketch/assign", s.wrapSub("sketch/assign", s.subSketchAssign))
	s.hs = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: cfg.ReadHeaderTimeout,
		WriteTimeout:      cfg.WriteTimeout,
	}
	return s, nil
}

// Handler exposes the route table (for tests via httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Swap atomically replaces the serving snapshot: requests already
// executing finish against the old one (they hold references), new
// requests see the new one. This is the SIGHUP hot-reload path. Each
// swap advances the snapshot generation echoed by /v1/shardinfo and the
// sketch sub-query answers. The server takes its own reference on snap
// (the caller keeps the one it holds) and drops the previous serving
// reference once the new state is published — a superseded snapshot's
// OnRelease closers run as soon as its last holder lets go. Swapping
// nil is ignored (the booting state is entered only at New).
func (s *Server) Swap(snap *Snapshot) {
	if snap == nil {
		s.cfg.Logf("server: ignoring nil snapshot swap")
		return
	}
	snap.Retain() // the serving reference; the caller's own ref is untouched
	s.swapMu.Lock()
	old := s.snap.Load()
	gen := old.gen + 1
	s.snapRefMu.Lock()
	s.snap.Store(&snapState{sn: snap, gen: gen})
	s.snapRefMu.Unlock()
	s.swapMu.Unlock()
	if old.sn != nil {
		old.sn.Release()
	}
	s.reloads.Add(1)
	mReloads.Add(1)
	s.cfg.Logf("server: snapshot swapped (%d tiles, %d clusters, generation %d)",
		snap.NumTiles(), snap.Clusters(), gen)
}

// current resolves the serving snapshot and its generation in one
// atomic load. sn is nil while the server is booting (New with a nil
// snapshot, before the first Swap). Only metadata endpoints (health,
// readiness) may use it — query paths must acquire, because a snapshot
// observed without a reference can lose its backing bytes to a
// concurrent Swap.
func (s *Server) current() (sn *Snapshot, gen int64) {
	st := s.snap.Load()
	return st.sn, st.gen
}

// acquire resolves the serving snapshot and takes a reference on it,
// returning the release the request must run when done. A nil snapshot
// (booting) returns a no-op release. The RLock makes retain atomic with
// respect to Swap's store-then-release, so the count cannot hit zero
// between the load and the Retain.
func (s *Server) acquire() (sn *Snapshot, gen int64, release func()) {
	s.snapRefMu.RLock()
	st := s.snap.Load()
	if st.sn != nil {
		st.sn.Retain()
	}
	s.snapRefMu.RUnlock()
	if st.sn == nil {
		return nil, st.gen, func() {}
	}
	return st.sn, st.gen, st.sn.Release
}

// Generation reports the current snapshot generation (0 while booting).
func (s *Server) Generation() int64 { return s.snap.Load().gen }

// Queued reports the weighted cost (single query = 1, batch = item
// count) waiting for an execution slot.
func (s *Server) Queued() int { return int(s.queuedCost.Load()) }

// Inflight reports how many requests hold execution slots.
func (s *Server) Inflight() int { return len(s.sem) }

// BeginDrain enters the lame-duck state: /readyz answers 503
// ("draining") and /v1/shardinfo reports not-ready, so health-checked
// routers and coordinator probes steer new traffic away, while every
// query endpoint keeps answering — in-flight and still-arriving work
// completes normally. The handoff sequence is BeginDrain, wait for the
// fleet to route around this server, then Shutdown. Idempotent.
func (s *Server) BeginDrain() {
	if !s.draining.Swap(true) {
		s.cfg.Logf("server: draining (lame duck): readiness withdrawn, queries still served")
	}
}

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Serve accepts connections on l until Shutdown (returning
// http.ErrServerClosed) or a listener error.
func (s *Server) Serve(l net.Listener) error { return s.hs.Serve(l) }

// Shutdown drains the server: the listener closes immediately, in-flight
// requests run to completion (or until ctx expires), then Serve returns.
func (s *Server) Shutdown(ctx context.Context) error { return s.hs.Shutdown(ctx) }

// admission outcomes
type admitStatus int

const (
	admitOK admitStatus = iota
	admitShed
	admitTimeout
)

// admit acquires an execution slot, waiting in the bounded queue when
// all slots are busy. weight is the admission cost of the request (1
// for single queries, the item count for batches): the queue sheds
// when its summed waiting weight would exceed MaxQueue, so a batch of
// N passes admission once but costs what N queued singles would.
// Returns a release function on admitOK.
func (s *Server) admit(ctx context.Context, weight int) (func(), admitStatus) {
	w := int64(weight)
	release := func() {
		s.inflightCost.Add(-w)
		<-s.sem
	}
	select {
	case s.sem <- struct{}{}:
		s.inflightCost.Add(w)
		return release, admitOK
	default:
	}
	if s.queuedCost.Add(w) > int64(s.cfg.MaxQueue) {
		s.queuedCost.Add(-w)
		return nil, admitShed
	}
	defer s.queuedCost.Add(-w)
	select {
	case s.sem <- struct{}{}:
		s.inflightCost.Add(w)
		return release, admitOK
	case <-ctx.Done():
		return nil, admitTimeout
	}
}

// occupancy is the admission-pressure fraction driving load-based
// degradation: summed executing + queued weight over total capacity.
// For weight-1 traffic this is exactly (inflight + queued) / (slots +
// queue); an inflight batch raises it by its item count, so concurrent
// auto queries see the batch's true cost.
func (s *Server) occupancy() float64 {
	used := s.inflightCost.Load() + s.queuedCost.Load()
	return float64(used) / float64(s.cfg.MaxInflight+s.cfg.MaxQueue)
}

// tier resolves the effective (mode, reason) for one query at this
// instant: auto queries degrade to the sketch tier under saturation or
// a deadline too small for the exact path. Each batch item makes this
// decision independently, so a batch degrades mid-flight exactly when
// a stream of single queries would. Bumps the degraded counter.
func (s *Server) tier(ctx context.Context, mode string) (string, string) {
	reason := ""
	if mode == ModeAuto {
		// Tier choice: shed accuracy, not availability. Saturation
		// or a deadline too small for the exact path both route the
		// query to the O(k) sketch tier up front.
		if s.occupancy() >= s.cfg.DegradeAt {
			mode, reason = ModeSketch, ReasonLoad
		} else if dl, ok := ctx.Deadline(); ok && time.Until(dl) < s.cfg.ExactBudget {
			mode, reason = ModeSketch, ReasonDeadline
		}
	} else if mode == ModeSketch {
		reason = ReasonRequested
	}
	if reason == ReasonLoad || reason == ReasonDeadline {
		mDegraded.Add(1)
	}
	return mode, reason
}

// opFunc executes one query against a snapshot. mode is the validated
// accuracy mode; degrade reports whether an auto query should start on
// the sketch tier and why.
type opFunc func(ctx context.Context, sn *Snapshot, vals url.Values, mode, reason string) (any, error)

// wrap applies the shared serving policy — counting, deadline,
// admission, degradation tier choice, fault hook, error mapping —
// around an operation.
func (s *Server) wrap(op string, fn opFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		mRequests.Add(1)

		sn, _, releaseSnap := s.acquire()
		defer releaseSnap()
		if sn == nil {
			s.writeNotReady(w)
			return
		}
		timeout := s.cfg.DefaultTimeout
		if tms := r.URL.Query().Get("timeout_ms"); tms != "" {
			v, err := strconv.Atoi(tms)
			if err != nil || v <= 0 {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("bad timeout_ms %q", tms))
				return
			}
			timeout = min(time.Duration(v)*time.Millisecond, s.cfg.MaxTimeout)
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()

		release, status := s.admit(ctx, 1)
		switch status {
		case admitShed:
			mShed.Add(1)
			w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
			writeError(w, http.StatusServiceUnavailable, "server saturated, retry later")
			return
		case admitTimeout:
			mTimedOut.Add(1)
			writeError(w, http.StatusGatewayTimeout, "deadline expired while queued")
			return
		}
		defer release()

		if s.cfg.Hook != nil {
			if err := s.cfg.Hook(op); err != nil {
				writeError(w, http.StatusInternalServerError, err.Error())
				return
			}
		}

		mode := r.URL.Query().Get("mode")
		if mode == "" {
			mode = ModeAuto
		}
		if mode != ModeAuto && mode != ModeExact && mode != ModeSketch && mode != ModePrune {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad mode %q", mode))
			return
		}
		mode, reason := s.tier(ctx, mode)

		res, err := fn(ctx, sn, r.URL.Query(), mode, reason)
		if err != nil {
			switch {
			case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
				mTimedOut.Add(1)
				writeError(w, http.StatusGatewayTimeout, "deadline expired mid-computation")
			case errors.Is(err, errNoClusters):
				writeError(w, http.StatusNotFound, err.Error())
			default:
				writeError(w, http.StatusBadRequest, err.Error())
			}
			return
		}
		mServed.Add(1)
		writeJSON(w, http.StatusOK, res)
	}
}

// sketchFallback reports whether an exact-tier failure should be
// retried on the sketch tier: the deadline expired mid-computation on
// an auto query, and the O(k) sketch path can still answer within a
// detached (cancellation-free) context.
func sketchFallback(ctx context.Context, err error, reason string) (context.Context, bool) {
	if reason != "" { // not an auto-exact attempt
		return nil, false
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return context.WithoutCancel(ctx), true
	}
	return nil, false
}

// Default knobs of the confidence-margin prune mode, used when the
// client sends no epsilon / delta parameter.
const (
	DefaultPruneEpsilon = 0.1
	DefaultPruneDelta   = 0.05
)

// pruneParams parses the epsilon/delta knobs of a mode=prune query and
// resolves the snapshot's memoized plan for that delta.
func pruneParams(sn *Snapshot, vals url.Values) (*prune.Plan, float64, error) {
	epsilon := DefaultPruneEpsilon
	if v := vals.Get("epsilon"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || !(f >= 0) {
			return nil, 0, fmt.Errorf("bad epsilon %q (want a number ≥ 0)", v)
		}
		epsilon = f
	}
	delta := DefaultPruneDelta
	if v := vals.Get("delta"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || !(f > 0) || f >= 1 {
			return nil, 0, fmt.Errorf("bad delta %q (want a number in (0, 1))", v)
		}
		delta = f
	}
	plan, err := sn.planFor(delta)
	if err != nil {
		return nil, 0, err
	}
	return plan, epsilon, nil
}

// pruneBody converts engine statistics into the wire shape and bumps
// the process-global prune counters.
func pruneBody(st prune.Stats, margin string, epsilon, delta float64) *PruneStats {
	mPrunedCandidates.Add(int64(st.PrunedCandidates))
	mPrunedCoordinates.Add(st.PrunedCoordinates())
	mScreenSurvivors.Add(int64(st.ScreenSurvivors))
	return &PruneStats{
		Margin: margin, Epsilon: epsilon, Delta: delta,
		Candidates:        st.Candidates,
		ScreenSurvivors:   st.ScreenSurvivors,
		PrunedCandidates:  st.PrunedCandidates,
		RefineAbandoned:   st.RefineAbandoned,
		LanesEvaluated:    st.LanesEvaluated,
		CellsEvaluated:    st.CellsEvaluated,
		CoordinatesTotal:  st.CoordinatesTotal,
		PrunedCoordinates: st.PrunedCoordinates(),
	}
}

func (s *Server) opDistance(ctx context.Context, sn *Snapshot, vals url.Values, mode, reason string) (any, error) {
	if mode == ModePrune {
		return nil, fmt.Errorf("mode %q is not supported for distance queries (nearest and assign only)", ModePrune)
	}
	a, err := ParseRect(vals.Get("a"))
	if err != nil {
		return nil, err
	}
	b, err := ParseRect(vals.Get("b"))
	if err != nil {
		return nil, err
	}
	return s.itemDistance(ctx, sn, a, b, mode, reason)
}

// itemDistance executes one parsed distance query: the shared body of
// GET /v1/distance and each POST /v1/batch/distance item, so a batch
// item's bytes are the single query's bytes by construction.
func (s *Server) itemDistance(ctx context.Context, sn *Snapshot, a, b table.Rect, mode, reason string) (any, error) {
	if err := sn.validRect(a); err != nil {
		return nil, err
	}
	if err := sn.validRect(b); err != nil {
		return nil, err
	}
	if mode == ModeExact || (mode == ModeAuto && reason == "") {
		d, err := sn.ExactDistance(ctx, a, b, s.cfg.Workers)
		if err == nil {
			return &DistanceResult{Distance: d, Tier: TierExact}, nil
		}
		if _, ok := sketchFallback(ctx, err, reason); mode == ModeExact || !ok {
			return nil, err
		}
		reason = ReasonDeadline
		mDegraded.Add(1)
	}
	d, err := sn.SketchDistance(a, b)
	if err != nil {
		return nil, err
	}
	return &DistanceResult{
		Distance: d, Tier: TierSketch,
		Degraded: reason == ReasonLoad || reason == ReasonDeadline, Reason: reason,
	}, nil
}

func (s *Server) opNearest(ctx context.Context, sn *Snapshot, vals url.Values, mode, reason string) (any, error) {
	q, err := ParseRect(vals.Get("q"))
	if err != nil {
		return nil, err
	}
	var plan *prune.Plan
	epsilon := 0.0
	if mode == ModePrune {
		if plan, epsilon, err = pruneParams(sn, vals); err != nil {
			return nil, err
		}
	}
	return s.itemNearest(ctx, sn, q, plan, epsilon, mode, reason)
}

// itemNearest executes one parsed nearest query (shared by the single
// and batch paths; plan/epsilon are only read in ModePrune, where the
// batch handler resolves them once for all items).
func (s *Server) itemNearest(ctx context.Context, sn *Snapshot, q table.Rect, plan *prune.Plan, epsilon float64, mode, reason string) (any, error) {
	if mode == ModePrune {
		idx, d, st, err := sn.ProgressiveNearest(ctx, q, s.cfg.Workers, plan, epsilon)
		if err != nil {
			return nil, err
		}
		return &NearestResult{
			Tile: idx, Rect: FormatRect(sn.tiles[idx]), Distance: d, Tier: TierPruned,
			Prune: pruneBody(st, MarginConfidence, epsilon, plan.Delta()),
		}, nil
	}
	var err error
	if mode == ModeExact || (mode == ModeAuto && reason == "") {
		// The exact tier: mode=exact keeps the plain full scan (the
		// reference the tests compare against); the auto tier runs the
		// exact-MARGIN progressive scan, whose answer is provably
		// identical but cheaper, and reports what it avoided.
		var res *NearestResult
		if mode == ModeAuto {
			idx, d, st, perr := sn.ProgressiveNearest(ctx, q, s.cfg.Workers, nil, 0)
			if err = perr; err == nil {
				res = &NearestResult{
					Tile: idx, Rect: FormatRect(sn.tiles[idx]), Distance: d, Tier: TierExact,
					Prune: pruneBody(st, MarginExact, 0, 0),
				}
			}
		} else {
			idx, d, eerr := sn.ExactNearest(ctx, q, s.cfg.Workers)
			if err = eerr; err == nil {
				res = &NearestResult{Tile: idx, Rect: FormatRect(sn.tiles[idx]), Distance: d, Tier: TierExact}
			}
		}
		if err == nil {
			return res, nil
		}
		fctx, ok := sketchFallback(ctx, err, reason)
		if mode == ModeExact || !ok {
			return nil, err
		}
		ctx, reason = fctx, ReasonDeadline
		mDegraded.Add(1)
	}
	idx, d, err := sn.SketchNearest(ctx, q)
	if err != nil {
		return nil, err
	}
	return &NearestResult{
		Tile: idx, Rect: FormatRect(sn.tiles[idx]), Distance: d, Tier: TierSketch,
		Degraded: reason == ReasonLoad || reason == ReasonDeadline, Reason: reason,
	}, nil
}

func (s *Server) opAssign(ctx context.Context, sn *Snapshot, vals url.Values, mode, reason string) (any, error) {
	q, err := ParseRect(vals.Get("q"))
	if err != nil {
		return nil, err
	}
	var plan *prune.Plan
	epsilon := 0.0
	if mode == ModePrune {
		if plan, epsilon, err = pruneParams(sn, vals); err != nil {
			return nil, err
		}
	}
	return s.itemAssign(ctx, sn, q, plan, epsilon, mode, reason)
}

// itemAssign executes one parsed assign query (shared by the single
// and batch paths).
func (s *Server) itemAssign(ctx context.Context, sn *Snapshot, q table.Rect, plan *prune.Plan, epsilon float64, mode, reason string) (any, error) {
	if mode == ModePrune {
		c, m, d, st, err := sn.ProgressiveAssign(ctx, q, s.cfg.Workers, plan, epsilon)
		if err != nil {
			return nil, err
		}
		return &AssignResult{
			Cluster: c, Medoid: m, Distance: d, Tier: TierPruned,
			Prune: pruneBody(st, MarginConfidence, epsilon, plan.Delta()),
		}, nil
	}
	var err error
	if mode == ModeExact || (mode == ModeAuto && reason == "") {
		var res *AssignResult
		if mode == ModeAuto {
			c, m, d, st, perr := sn.ProgressiveAssign(ctx, q, s.cfg.Workers, nil, 0)
			if err = perr; err == nil {
				res = &AssignResult{
					Cluster: c, Medoid: m, Distance: d, Tier: TierExact,
					Prune: pruneBody(st, MarginExact, 0, 0),
				}
			}
		} else {
			c, m, d, eerr := sn.ExactAssign(ctx, q)
			if err = eerr; err == nil {
				res = &AssignResult{Cluster: c, Medoid: m, Distance: d, Tier: TierExact}
			}
		}
		if err == nil {
			return res, nil
		}
		fctx, ok := sketchFallback(ctx, err, reason)
		if mode == ModeExact || !ok {
			return nil, err
		}
		ctx, reason = fctx, ReasonDeadline
		mDegraded.Add(1)
	}
	c, m, d, err := sn.SketchAssign(ctx, q)
	if err != nil {
		return nil, err
	}
	return &AssignResult{
		Cluster: c, Medoid: m, Distance: d, Tier: TierSketch,
		Degraded: reason == ReasonLoad || reason == ReasonDeadline, Reason: reason,
	}, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	sn, _ := s.current()
	if sn == nil {
		// Alive but not serving yet: /healthz answers 200 (the process is
		// healthy), /readyz answers 503 (do not route queries here).
		writeJSON(w, http.StatusOK, &Health{Status: "booting"})
		return
	}
	writeJSON(w, http.StatusOK, &Health{
		Status: "ok", Rows: sn.tb.Rows(), Cols: sn.tb.Cols(),
		Tiles: sn.NumTiles(), Clusters: sn.Clusters(),
		TileRows: sn.TileRows(), TileCols: sn.TileCols(),
		Reloads: s.reloads.Load(),
	})
}

// handleReadyz is the routing gate, distinct from the liveness probe:
// 200 exactly when a snapshot is being served. A store-mode server that
// is still resuming its pool answers 503 here, so a coordinator never
// routes a query to a booting shard.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	sn, gen := s.current()
	if sn == nil {
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		writeJSON(w, http.StatusServiceUnavailable, &Ready{Status: "booting"})
		return
	}
	if s.Draining() {
		// Lame duck: still answering queries, but do not route new work
		// here — the 503 is what flips a coordinator's probes to failing.
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		writeJSON(w, http.StatusServiceUnavailable, &Ready{Status: "draining", Generation: gen})
		return
	}
	writeJSON(w, http.StatusOK, &Ready{Status: "ready", Generation: gen})
}

// writeNotReady sheds a query arriving before the first snapshot with
// the same 503 + Retry-After contract the admission queue uses, so the
// retrying client and the coordinator treat "booting" exactly like
// "saturated": back off and retry.
func (s *Server) writeNotReady(w http.ResponseWriter) {
	mShed.Add(1)
	w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
	writeError(w, http.StatusServiceUnavailable, "no snapshot published yet, retry later")
}

func retryAfterSeconds(d time.Duration) string {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}

func writeError(w http.ResponseWriter, code int, msg string) {
	data, _ := json.Marshal(errorBody{Error: msg})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}
