package stable

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
)

func TestNewRejectsBadAlpha(t *testing.T) {
	for _, alpha := range []float64{0, -1, 2.0001, 3, math.NaN(), math.Inf(1)} {
		if _, err := New(alpha); err == nil {
			t.Errorf("New(%v): expected error", alpha)
		}
	}
}

func TestNewAcceptsValidAlpha(t *testing.T) {
	for _, alpha := range []float64{0.01, 0.25, 0.5, 1, 1.5, 2} {
		d, err := New(alpha)
		if err != nil {
			t.Fatalf("New(%v): %v", alpha, err)
		}
		if d.Alpha() != alpha {
			t.Errorf("Alpha() = %v, want %v", d.Alpha(), alpha)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(0): expected panic")
		}
	}()
	MustNew(0)
}

func TestGaussianCaseIsStandardNormal(t *testing.T) {
	d := MustNew(2)
	rng := rand.New(rand.NewPCG(1, 1))
	const n = 200_000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := d.Sample(rng)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Gaussian mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("Gaussian variance = %v, want ~1 (N(0,1) convention)", variance)
	}
}

func TestCauchyQuartiles(t *testing.T) {
	// Standard Cauchy has quartiles at ±1 and median 0.
	d := MustNew(1)
	rng := rand.New(rand.NewPCG(2, 2))
	const n = 200_000
	xs := sampleSorted(d, rng, n)
	if m := xs[n/2]; math.Abs(m) > 0.02 {
		t.Errorf("Cauchy median = %v, want ~0", m)
	}
	if q := xs[3*n/4]; math.Abs(q-1) > 0.03 {
		t.Errorf("Cauchy 75%% quantile = %v, want ~1", q)
	}
	if q := xs[n/4]; math.Abs(q+1) > 0.03 {
		t.Errorf("Cauchy 25%% quantile = %v, want ~-1", q)
	}
}

func TestSymmetry(t *testing.T) {
	// Every symmetric stable sampler should produce a median near 0 and
	// matching upper/lower quantiles.
	for _, alpha := range []float64{0.3, 0.5, 0.8, 1.2, 1.7, 2} {
		d := MustNew(alpha)
		rng := rand.New(rand.NewPCG(3, uint64(alpha*1000)))
		const n = 120_000
		xs := sampleSorted(d, rng, n)
		if m := xs[n/2]; math.Abs(m) > 0.03 {
			t.Errorf("alpha=%v: median = %v, want ~0", alpha, m)
		}
		hi := xs[9*n/10]
		lo := -xs[n/10]
		// Relative agreement of the symmetric tails.
		if rel := math.Abs(hi-lo) / math.Max(hi, lo); rel > 0.1 {
			t.Errorf("alpha=%v: asymmetric deciles %v vs %v (rel %v)", alpha, hi, lo, rel)
		}
	}
}

// TestStabilityProperty is the core correctness check: for independent
// copies X1, X2 and constants a, b, the combination a·X1 + b·X2 must be
// distributed as (|a|^α + |b|^α)^(1/α) · X. We compare empirical deciles.
func TestStabilityProperty(t *testing.T) {
	for _, alpha := range []float64{0.5, 0.8, 1, 1.3, 1.9, 2} {
		d := MustNew(alpha)
		a, b := 2.0, 3.0
		scale := math.Pow(math.Pow(a, alpha)+math.Pow(b, alpha), 1/alpha)
		rng := rand.New(rand.NewPCG(4, uint64(alpha*1000)))
		const n = 150_000
		combined := make([]float64, n)
		scaled := make([]float64, n)
		for i := 0; i < n; i++ {
			combined[i] = a*d.Sample(rng) + b*d.Sample(rng)
			scaled[i] = scale * d.Sample(rng)
		}
		sort.Float64s(combined)
		sort.Float64s(scaled)
		// Compare interior quantiles (tails of heavy-tailed laws are too
		// noisy for direct comparison at this sample size).
		for _, q := range []float64{0.2, 0.3, 0.4, 0.6, 0.7, 0.8} {
			i := int(q * n)
			c, s := combined[i], scaled[i]
			denom := math.Max(math.Abs(c), math.Abs(s))
			if denom < 0.05 {
				continue // both near the symmetric center
			}
			if rel := math.Abs(c-s) / denom; rel > 0.08 {
				t.Errorf("alpha=%v q=%v: combined %v vs scaled %v (rel %v)", alpha, q, c, s, rel)
			}
		}
	}
}

func TestHeavyTailOrdering(t *testing.T) {
	// Smaller alpha means heavier tails: the 99% quantile should grow as
	// alpha shrinks.
	quant := func(alpha float64) float64 {
		d := MustNew(alpha)
		rng := rand.New(rand.NewPCG(5, uint64(alpha*1000)))
		const n = 60_000
		xs := sampleSorted(d, rng, n)
		return xs[int(0.99*n)]
	}
	q15, q10, q05 := quant(1.5), quant(1.0), quant(0.5)
	if !(q05 > q10 && q10 > q15) {
		t.Errorf("tail quantiles not ordered by heaviness: a=0.5:%v a=1:%v a=1.5:%v", q05, q10, q15)
	}
}

func TestSampleLevyPositiveAndHeavy(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	const n = 50_000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = SampleLevy(rng)
		if xs[i] <= 0 {
			t.Fatalf("Lévy sample %v not positive", xs[i])
		}
	}
	sort.Float64s(xs)
	// Median of Lévy(0,1) is 1/(Φ⁻¹(0.75))² ≈ 2.1981.
	med := xs[n/2]
	if math.Abs(med-2.1981)/2.1981 > 0.05 {
		t.Errorf("Lévy median = %v, want ~2.198", med)
	}
}

func TestMedianAbsExactValues(t *testing.T) {
	if got := MedianAbs(1); got != 1 {
		t.Errorf("MedianAbs(1) = %v, want 1", got)
	}
	want := 0.6744897501960817
	if got := MedianAbs(2); got != want {
		t.Errorf("MedianAbs(2) = %v, want %v", got, want)
	}
}

func TestMedianAbsMonteCarloAgainstEmpirical(t *testing.T) {
	// Cross-check the cached Monte-Carlo constant against an independent
	// empirical estimate with a different seed.
	for _, alpha := range []float64{0.5, 0.75, 1.25, 1.5} {
		b := MedianAbs(alpha)
		d := MustNew(alpha)
		rng := rand.New(rand.NewPCG(7, uint64(alpha*1000)))
		const n = 150_000
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Abs(d.Sample(rng))
		}
		sort.Float64s(xs)
		emp := xs[n/2]
		if math.Abs(b-emp)/emp > 0.02 {
			t.Errorf("alpha=%v: MedianAbs %v vs independent empirical %v", alpha, b, emp)
		}
	}
}

func TestMedianAbsCached(t *testing.T) {
	a := MedianAbs(0.65)
	b := MedianAbs(0.65)
	if a != b {
		t.Errorf("MedianAbs not deterministic: %v vs %v", a, b)
	}
}

func TestMedianAbsNearOneIsContinuous(t *testing.T) {
	// B(p) should vary smoothly; check values bracketing the exact B(1)=1.
	lo, hi := MedianAbs(0.95), MedianAbs(1.05)
	if !(lo > 0.8 && lo < 1.2 && hi > 0.8 && hi < 1.2) {
		t.Errorf("B(0.95)=%v B(1.05)=%v not near B(1)=1", lo, hi)
	}
}

func TestFill(t *testing.T) {
	d := MustNew(1.5)
	rng := rand.New(rand.NewPCG(8, 8))
	out := make([]float64, 1000)
	d.Fill(rng, out)
	distinct := map[float64]bool{}
	for _, v := range out {
		if math.IsNaN(v) {
			t.Fatal("Fill produced NaN")
		}
		distinct[v] = true
	}
	if len(distinct) < 990 {
		t.Errorf("Fill produced too many duplicates: %d distinct of 1000", len(distinct))
	}
}

func TestMedianInPlace(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{1}, 1},
		{[]float64{2, 1}, 1.5},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 2, 3, 1}, 2.5},
		{[]float64{5, 5, 5}, 5},
	}
	for _, c := range cases {
		in := append([]float64(nil), c.in...)
		if got := medianInPlace(in); got != c.want {
			t.Errorf("medianInPlace(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func sampleSorted(d *Dist, rng *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = d.Sample(rng)
	}
	sort.Float64s(xs)
	return xs
}
