// Package stable implements sampling from symmetric α-stable distributions
// for α ∈ (0, 2], the probabilistic core of the paper's Lp sketches.
//
// A distribution X is α-stable when a1·X1 + ... + an·Xn is distributed as
// ‖(a1,...,an)‖α · X for independent copies Xi of X. The sketch estimators
// rely on exactly this property: the dot product of a data vector with a
// vector of stable samples is a stable variable scaled by the Lp norm of
// the data (Section 3.2 of the paper).
//
// Three cases have closed forms — Gaussian (α = 2), Cauchy (α = 1) and
// Lévy (α = 1/2, totally skewed) — and the general symmetric case is
// sampled with the Chambers–Mallows–Stuck (CMS) transform from one uniform
// and one exponential variate.
//
// Scale conventions: Sample draws from the distribution whose
// characteristic function is exp(-|t|^α), except at α = 2 where it draws a
// standard normal N(0,1) rather than the CMS limit N(0,2). This makes the
// p = 2 sketch directly compatible with the Euclidean special-case
// estimator (E[(r·v)²] = ‖v‖₂² for r with i.i.d. N(0,1) entries). The
// scaling factor B(p) returned by MedianAbs always refers to the
// convention Sample actually uses, so estimators stay consistent.
package stable

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
)

const halfPi = math.Pi / 2

// Dist is a symmetric α-stable distribution ready for sampling.
// The zero value is invalid; construct with New.
type Dist struct {
	alpha float64
	// invAlpha and expo precompute the CMS exponents for the general case.
	invAlpha float64
	expo     float64 // (1-α)/α
}

// New returns the symmetric α-stable distribution with index alpha.
// alpha must lie in (0, 2]; otherwise an error is returned, since the
// stability property (and hence the Lp sketch guarantee) fails outside
// that range.
func New(alpha float64) (*Dist, error) {
	if !(alpha > 0) || alpha > 2 || math.IsNaN(alpha) {
		return nil, fmt.Errorf("stable: alpha %v outside (0, 2]", alpha)
	}
	return &Dist{
		alpha:    alpha,
		invAlpha: 1 / alpha,
		expo:     (1 - alpha) / alpha,
	}, nil
}

// MustNew is New but panics on error, for use with compile-time-constant
// alphas in tests and examples.
func MustNew(alpha float64) *Dist {
	d, err := New(alpha)
	if err != nil {
		panic(err)
	}
	return d
}

// Alpha returns the stability index of the distribution.
func (d *Dist) Alpha() float64 { return d.alpha }

// Sample draws one variate using rng.
func (d *Dist) Sample(rng *rand.Rand) float64 {
	switch d.alpha {
	case 2:
		return rng.NormFloat64()
	case 1:
		// Symmetric 1-stable is the standard Cauchy: tan(θ), θ ~ U(-π/2, π/2).
		return math.Tan(halfPi * (2*rng.Float64() - 1))
	default:
		return d.cms(rng)
	}
}

// cms implements the Chambers–Mallows–Stuck transform for the symmetric
// case β = 0, α ≠ 1:
//
//	X = sin(αθ)/cos(θ)^(1/α) · (cos((1-α)θ)/W)^((1-α)/α)
//
// with θ ~ U(-π/2, π/2) and W ~ Exp(1).
func (d *Dist) cms(rng *rand.Rand) float64 {
	theta := halfPi * (2*rng.Float64() - 1)
	w := rng.ExpFloat64()
	// Guard against the measure-zero endpoints that would divide by zero.
	for w == 0 {
		w = rng.ExpFloat64()
	}
	cosTheta := math.Cos(theta)
	a := math.Sin(d.alpha*theta) / math.Pow(cosTheta, d.invAlpha)
	b := math.Pow(math.Cos((1-d.alpha)*theta)/w, d.expo)
	return a * b
}

// Fill fills out with independent samples.
func (d *Dist) Fill(rng *rand.Rand, out []float64) {
	for i := range out {
		out[i] = d.Sample(rng)
	}
}

// SampleLevy draws from the standard Lévy distribution (the totally skewed
// 1/2-stable with support on the positive reals), included because the
// paper names it as the classical α = 1/2 example. It is NOT used for
// sketching — sketches need the symmetric family — but is exercised by the
// distribution self-tests. Lévy(0,1) = 1/Z² for Z ~ N(0,1).
func SampleLevy(rng *rand.Rand) float64 {
	z := rng.NormFloat64()
	for z == 0 {
		z = rng.NormFloat64()
	}
	return 1 / (z * z)
}

// medianAbsExact lists the closed-form values of median(|X|):
//   - α = 1 (Cauchy): |X| has CDF (2/π)·arctan(x), median = tan(π/4) = 1.
//   - α = 2 (N(0,1) by our convention): Φ⁻¹(0.75) ≈ 0.6744897501960817.
var medianAbsExact = map[float64]float64{
	1: 1,
	2: 0.6744897501960817,
}

var (
	medianAbsMu    sync.Mutex
	medianAbsCache = map[float64]float64{}
)

// mcSamples is the Monte-Carlo sample count for MedianAbs. 400k samples put
// the relative error of the median estimate well under 0.5% for every
// α ∈ (0, 2], which is far below the sketch approximation error ε.
const mcSamples = 400_000

// MedianAbs returns B(α) = median(|X|) for X drawn as Sample does.
// This is the scaling factor of Theorem 2: the median of absolute sketch
// differences estimates B(α)·‖x−y‖α, so dividing by B(α) recovers the
// norm. Exact values are returned for α ∈ {1, 2}; other indices use the
// analytic quantile (Fourier inversion of the characteristic function,
// see dist.go) when available, or a deterministic-seed Monte-Carlo run
// for very small α. Results are cached per α.
func MedianAbs(alpha float64) float64 {
	if v, ok := medianAbsExact[alpha]; ok {
		return v
	}
	medianAbsMu.Lock()
	defer medianAbsMu.Unlock()
	if v, ok := medianAbsCache[alpha]; ok {
		return v
	}
	if v, err := MedianAbsAnalytic(alpha); err == nil {
		medianAbsCache[alpha] = v
		return v
	}
	d, err := New(alpha)
	if err != nil {
		panic(err)
	}
	// Fixed seeds keyed on alpha keep the constant reproducible across runs.
	rng := rand.New(rand.NewPCG(0x5eed_ab1e, math.Float64bits(alpha)))
	abs := make([]float64, mcSamples)
	for i := range abs {
		abs[i] = math.Abs(d.Sample(rng))
	}
	v := medianInPlace(abs)
	medianAbsCache[alpha] = v
	return v
}

// medianInPlace is a local quickselect median to avoid an import cycle with
// internal/quantile (which has no dependencies, but keeping stable
// dependency-free makes it reusable in isolation).
func medianInPlace(data []float64) float64 {
	n := len(data)
	k := n / 2
	lo, hi := 0, n-1
	for lo < hi {
		pivot := data[lo+(hi-lo)/2]
		i, j := lo, hi
		for i <= j {
			for data[i] < pivot {
				i++
			}
			for data[j] > pivot {
				j--
			}
			if i <= j {
				data[i], data[j] = data[j], data[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	upper := data[k]
	if n%2 == 1 {
		return upper
	}
	lower := math.Inf(-1)
	for _, v := range data[:k] {
		if v > lower {
			lower = v
		}
	}
	return (lower + upper) / 2
}
