package stable

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"

	"repro/internal/integrate"
)

func TestPDFClosedForms(t *testing.T) {
	cauchy := MustNew(1)
	for _, x := range []float64{-3, -1, 0, 0.5, 2} {
		want := 1 / (math.Pi * (1 + x*x))
		got, err := cauchy.PDF(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("Cauchy PDF(%v) = %v, want %v", x, got, want)
		}
	}
	normal := MustNew(2)
	for _, x := range []float64{-2, 0, 1} {
		want := math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
		got, err := normal.PDF(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("Normal PDF(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestCDFClosedForms(t *testing.T) {
	cauchy := MustNew(1)
	for _, x := range []float64{-5, -1, 0, 1, 5} {
		want := 0.5 + math.Atan(x)/math.Pi
		got, err := cauchy.CDF(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("Cauchy CDF(%v) = %v, want %v", x, got, want)
		}
	}
	normal := MustNew(2)
	got, err := normal.CDF(0)
	if err != nil || math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Normal CDF(0) = %v, %v", got, err)
	}
	got, _ = normal.CDF(1.959963984540054)
	if math.Abs(got-0.975) > 1e-9 {
		t.Errorf("Normal CDF(1.96) = %v, want 0.975", got)
	}
}

// TestFourierAgainstClosedFormCauchy evaluates the generic Fourier path
// at α very near 1 (which does NOT hit the closed-form switch) and checks
// continuity against the exact Cauchy values.
func TestFourierNearCauchy(t *testing.T) {
	d := MustNew(1.0000001)
	for _, x := range []float64{0, 0.5, 1, 3, 10} {
		wantP := 1 / (math.Pi * (1 + x*x))
		gotP, err := d.PDF(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(gotP-wantP) > 1e-5 {
			t.Errorf("PDF(%v) near Cauchy = %v, want ≈%v", x, gotP, wantP)
		}
		wantC := 0.5 + math.Atan(x)/math.Pi
		gotC, err := d.CDF(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(gotC-wantC) > 1e-5 {
			t.Errorf("CDF(%v) near Cauchy = %v, want ≈%v", x, gotC, wantC)
		}
	}
}

func TestCDFProperties(t *testing.T) {
	for _, alpha := range []float64{0.4, 0.7, 1.3, 1.8} {
		d := MustNew(alpha)
		// Monotone, symmetric, correct at 0.
		prev := -1.0
		for _, x := range []float64{-20, -5, -1, -0.1, 0, 0.1, 1, 5, 20} {
			f, err := d.CDF(x)
			if err != nil {
				t.Fatalf("alpha %v: %v", alpha, err)
			}
			if f < prev-1e-12 {
				t.Errorf("alpha %v: CDF not monotone at %v", alpha, x)
			}
			if f < 0 || f > 1 {
				t.Errorf("alpha %v: CDF(%v) = %v outside [0,1]", alpha, x, f)
			}
			mirror, _ := d.CDF(-x)
			if math.Abs(f+mirror-1) > 1e-8 {
				t.Errorf("alpha %v: CDF(%v)+CDF(%v) = %v, want 1", alpha, x, -x, f+mirror)
			}
			prev = f
		}
		if f, _ := d.CDF(0); f != 0.5 {
			t.Errorf("alpha %v: CDF(0) = %v", alpha, f)
		}
	}
}

func TestPDFIntegratesToOne(t *testing.T) {
	for _, alpha := range []float64{0.8, 1.5} {
		d := MustNew(alpha)
		total, err := integrate.Adaptive(func(x float64) float64 {
			p, err := d.PDF(x)
			if err != nil {
				return math.NaN()
			}
			return p
		}, -60, 60, 1e-8)
		if err != nil {
			t.Fatalf("alpha %v: %v", alpha, err)
		}
		// Heavy tails put a little mass beyond ±60; allow for it.
		if total < 0.97 || total > 1.0001 {
			t.Errorf("alpha %v: ∫pdf = %v", alpha, total)
		}
	}
}

func TestCDFMatchesEmpirical(t *testing.T) {
	// The analytic CDF must agree with the CMS sampler — this ties the
	// two independent implementations (sampling transform and Fourier
	// inversion) to the same distribution.
	for _, alpha := range []float64{0.6, 1.4} {
		d := MustNew(alpha)
		rng := rand.New(rand.NewPCG(42, uint64(alpha*100)))
		const n = 200_000
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = d.Sample(rng)
		}
		sort.Float64s(xs)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
			emp := xs[int(q*n)]
			analytic, err := d.CDF(emp)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(analytic-q) > 0.01 {
				t.Errorf("alpha %v: CDF(empirical %v-quantile %v) = %v", alpha, q, emp, analytic)
			}
		}
	}
}

func TestQuantileInvertsCDF(t *testing.T) {
	for _, alpha := range []float64{0.5, 1, 1.7, 2} {
		d := MustNew(alpha)
		for _, q := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
			x, err := d.Quantile(q)
			if err != nil {
				t.Fatalf("alpha %v q %v: %v", alpha, q, err)
			}
			back, err := d.CDF(x)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(back-q) > 1e-7 {
				t.Errorf("alpha %v: CDF(Quantile(%v)) = %v", alpha, q, back)
			}
		}
	}
}

func TestQuantileClosedForms(t *testing.T) {
	cauchy := MustNew(1)
	got, err := cauchy.Quantile(0.75)
	if err != nil || math.Abs(got-1) > 1e-12 {
		t.Errorf("Cauchy Q(0.75) = %v, %v; want 1", got, err)
	}
	normal := MustNew(2)
	got, err = normal.Quantile(0.975)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.959963984540054) > 1e-6 {
		t.Errorf("Normal Q(0.975) = %v, want 1.96", got)
	}
}

func TestQuantileErrors(t *testing.T) {
	d := MustNew(1.5)
	for _, q := range []float64{0, 1, -0.1, 1.1} {
		if _, err := d.Quantile(q); err == nil {
			t.Errorf("Quantile(%v): expected error", q)
		}
	}
}

func TestAnalyticUnavailableBelowRange(t *testing.T) {
	d := MustNew(0.1)
	if d.HasAnalytic() {
		t.Error("alpha 0.1 should not have analytic functions")
	}
	if _, err := d.PDF(1); err == nil {
		t.Error("PDF: expected error")
	}
	if _, err := d.CDF(1); err == nil {
		t.Error("CDF: expected error")
	}
	if _, err := d.Quantile(0.75); err == nil {
		t.Error("Quantile: expected error")
	}
	if _, err := MedianAbsAnalytic(0.1); err == nil {
		t.Error("MedianAbsAnalytic: expected error")
	}
	if _, err := MedianAbsAnalytic(-1); err == nil {
		t.Error("MedianAbsAnalytic bad alpha: expected error")
	}
}

func TestMedianAbsAnalyticMatchesKnown(t *testing.T) {
	// B(1) = 1 exactly; B(2) = Φ⁻¹(0.75) under the N(0,1) convention.
	got, err := MedianAbsAnalytic(1)
	if err != nil || math.Abs(got-1) > 1e-9 {
		t.Errorf("B(1) analytic = %v, %v", got, err)
	}
	got, err = MedianAbsAnalytic(2)
	if err != nil || math.Abs(got-0.6744897501960817) > 1e-6 {
		t.Errorf("B(2) analytic = %v, %v", got, err)
	}
}

func TestMedianAbsAnalyticMatchesMonteCarlo(t *testing.T) {
	for _, alpha := range []float64{0.5, 0.75, 1.25, 1.5} {
		analytic, err := MedianAbsAnalytic(alpha)
		if err != nil {
			t.Fatalf("alpha %v: %v", alpha, err)
		}
		// Independent Monte-Carlo estimate.
		d := MustNew(alpha)
		rng := rand.New(rand.NewPCG(7, uint64(alpha*1000)))
		const n = 300_000
		abs := make([]float64, n)
		for i := range abs {
			abs[i] = math.Abs(d.Sample(rng))
		}
		sort.Float64s(abs)
		mc := abs[n/2]
		if math.Abs(analytic-mc)/mc > 0.01 {
			t.Errorf("alpha %v: analytic B = %v vs Monte-Carlo %v", alpha, analytic, mc)
		}
	}
}

func TestMedianAbsUsesAnalyticPath(t *testing.T) {
	// MedianAbs for an analytic-range alpha must agree with the direct
	// analytic computation bit-for-bit (it is the same code path, cached).
	want, err := MedianAbsAnalytic(1.31)
	if err != nil {
		t.Fatal(err)
	}
	if got := MedianAbs(1.31); got != want {
		t.Errorf("MedianAbs(1.31) = %v, want analytic %v", got, want)
	}
	// Below the analytic range the Monte-Carlo path still works.
	if got := MedianAbs(0.2); !(got > 0) {
		t.Errorf("MedianAbs(0.2) = %v", got)
	}
}

func TestHeavyTailCDFOrdering(t *testing.T) {
	// At a far tail point, smaller alpha has more mass beyond it.
	x := 20.0
	f05, _ := MustNew(0.5).CDF(x)
	f10, _ := MustNew(1.0).CDF(x)
	f15, _ := MustNew(1.5).CDF(x)
	t05, t10, t15 := 1-f05, 1-f10, 1-f15
	if !(t05 > t10 && t10 > t15) {
		t.Errorf("tail masses not ordered: %v, %v, %v", t05, t10, t15)
	}
}
