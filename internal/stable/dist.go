package stable

import (
	"fmt"
	"math"

	"repro/internal/integrate"
)

// This file provides analytic distribution functions for the symmetric
// α-stable laws the sketches sample from — the numeric substrate Go lacks.
// The density and distribution functions follow from Fourier inversion of
// the characteristic function φ(t) = exp(-|t|^α):
//
//	pdf(x) = (1/π) ∫₀^∞ cos(xt)·e^(-t^α) dt
//	cdf(x) = 1/2 + (1/π) ∫₀^∞ sin(xt)/t·e^(-t^α) dt
//
// The integrands oscillate, so they are integrated half-period by
// half-period (an alternating series whose remainder is bounded by the
// first omitted term) with adaptive Simpson quadrature inside each piece.
// Closed forms are used at α = 1 (Cauchy) and α = 2 (standard normal —
// note Sample's N(0,1) convention at α = 2, documented in New).
//
// Accuracy degrades and cost grows as α → 0 (the envelope e^(-t^α) decays
// ever more slowly); the analytic path is enabled for α ≥ minAnalyticAlpha
// and callers below that range fall back to Monte-Carlo estimates.

// minAnalyticAlpha is the smallest index for which the Fourier-integral
// evaluation is both fast and accurate to ~1e-9.
const minAnalyticAlpha = 0.3

// cdfTol is the absolute error target of CDF/PDF evaluation.
const cdfTol = 1e-10

// HasAnalytic reports whether PDF/CDF/Quantile are available for this
// distribution's index.
func (d *Dist) HasAnalytic() bool { return d.alpha >= minAnalyticAlpha }

// PDF evaluates the density at x.
func (d *Dist) PDF(x float64) (float64, error) {
	switch d.alpha {
	case 2:
		return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi), nil
	case 1:
		return 1 / (math.Pi * (1 + x*x)), nil
	}
	if !d.HasAnalytic() {
		return 0, fmt.Errorf("stable: analytic PDF unavailable for alpha %v < %v",
			d.alpha, minAnalyticAlpha)
	}
	x = math.Abs(x) // symmetric
	v, err := d.fourier(x, true)
	if err != nil {
		return 0, err
	}
	p := v / math.Pi
	if p < 0 { // clamp tiny negative round-off in the far tail
		p = 0
	}
	return p, nil
}

// CDF evaluates the distribution function at x.
func (d *Dist) CDF(x float64) (float64, error) {
	switch d.alpha {
	case 2:
		return 0.5 * math.Erfc(-x/math.Sqrt2), nil
	case 1:
		return 0.5 + math.Atan(x)/math.Pi, nil
	}
	if !d.HasAnalytic() {
		return 0, fmt.Errorf("stable: analytic CDF unavailable for alpha %v < %v",
			d.alpha, minAnalyticAlpha)
	}
	if x == 0 {
		return 0.5, nil
	}
	ax := math.Abs(x)
	v, err := d.fourier(ax, false)
	if err != nil {
		return 0, err
	}
	f := 0.5 + v/math.Pi
	if f > 1 {
		f = 1
	}
	if x < 0 {
		f = 1 - f
	}
	return f, nil
}

// fourier evaluates ∫₀^∞ g(xt)·e^(-t^α)·w(t) dt where g = cos, w = 1 for
// the PDF kernel and g = sin, w = 1/t for the CDF kernel.
func (d *Dist) fourier(x float64, pdfKernel bool) (float64, error) {
	alpha := d.alpha
	integrand := func(t float64) float64 {
		if t == 0 {
			if pdfKernel {
				return 1 // cos(0)·e^0
			}
			return x // lim sin(xt)/t
		}
		e := math.Exp(-math.Pow(t, alpha))
		if pdfKernel {
			return math.Cos(x*t) * e
		}
		return math.Sin(x*t) / t * e
	}
	// Envelope cutoff: beyond tEnv the integrand is below 1e-14 in
	// magnitude and the alternating tail is negligible.
	tEnv := math.Pow(32.3, 1/alpha) // e^(-32.3) ≈ 9e-15
	if x == 0 {
		if pdfKernel {
			v, err := integrate.Adaptive(integrand, 0, tEnv, cdfTol)
			return v, err
		}
		return 0, nil
	}
	halfPeriod := math.Pi / x
	if halfPeriod >= tEnv {
		// No oscillation before the envelope dies: one adaptive sweep.
		return integrate.Adaptive(integrand, 0, tEnv, cdfTol)
	}
	// Piece boundaries at the integrand's zeros: sin(xt) vanishes at
	// jπ/x; cos(xt) at (j+1/2)π/x.
	firstZero := halfPeriod
	if pdfKernel {
		firstZero = halfPeriod / 2
	}
	total, err := integrate.Adaptive(integrand, 0, firstZero, cdfTol)
	if err != nil {
		return 0, err
	}
	const maxPieces = 2_000_000
	lo := firstZero
	for j := 0; j < maxPieces; j++ {
		hi := lo + halfPeriod
		piece, err := integrate.Adaptive(integrand, lo, hi, cdfTol/4)
		if err != nil {
			return 0, err
		}
		total += piece
		// Alternating series: the remainder is bounded by the next term,
		// which is bounded by the envelope at hi times the piece width
		// (divided by hi for the 1/t CDF kernel).
		bound := math.Exp(-math.Pow(hi, alpha)) * halfPeriod
		if !pdfKernel {
			bound /= hi
		}
		if bound < cdfTol || hi > tEnv {
			return total, nil
		}
		lo = hi
	}
	return 0, fmt.Errorf("stable: Fourier integral did not converge for alpha %v, x %v", alpha, x)
}

// Quantile returns the q-quantile (inverse CDF) for q ∈ (0, 1).
func (d *Dist) Quantile(q float64) (float64, error) {
	if !(q > 0 && q < 1) {
		return 0, fmt.Errorf("stable: quantile level %v outside (0, 1)", q)
	}
	switch d.alpha {
	case 2:
		// Invert via Brent on the closed-form CDF (erfc has no stdlib
		// inverse); bracket grows below.
	case 1:
		return math.Tan(math.Pi * (q - 0.5)), nil
	}
	if !d.HasAnalytic() {
		return 0, fmt.Errorf("stable: analytic quantile unavailable for alpha %v < %v",
			d.alpha, minAnalyticAlpha)
	}
	if q == 0.5 {
		return 0, nil
	}
	// By symmetry solve in the upper half and mirror.
	upper := q
	mirror := false
	if q < 0.5 {
		upper = 1 - q
		mirror = true
	}
	g := func(x float64) float64 {
		v, err := d.CDF(x)
		if err != nil {
			return math.NaN()
		}
		return v - upper
	}
	// Expand the bracket geometrically; heavy tails can push quantiles far
	// out for small α.
	lo, hi := 0.0, 1.0
	for i := 0; i < 200 && g(hi) < 0; i++ {
		lo = hi
		hi *= 2
	}
	x, err := integrate.Brent(g, lo, hi, 1e-11)
	if err != nil {
		return 0, err
	}
	if mirror {
		x = -x
	}
	return x, nil
}

// MedianAbsAnalytic computes B(α) = median |X| exactly as the 0.75
// quantile of the symmetric law (P(|X| ≤ m) = 2F(m) − 1 = 1/2). It is
// available for α ≥ minAnalyticAlpha; MedianAbs dispatches to it and
// falls back to Monte Carlo below the analytic range.
func MedianAbsAnalytic(alpha float64) (float64, error) {
	d, err := New(alpha)
	if err != nil {
		return 0, err
	}
	if !d.HasAnalytic() {
		return 0, fmt.Errorf("stable: analytic B(p) unavailable for alpha %v < %v",
			alpha, minAnalyticAlpha)
	}
	return d.Quantile(0.75)
}
