package stable

// Parallel pool construction builds many Sketchers concurrently, and each
// construction reads MedianAbs(p) — so the median table (exact map +
// mutex-guarded cache) and the Fourier-inversion path behind it must be
// safe under concurrent first-touch of the same alpha. Meaningful under
// `go test -race` (see `make race`).

import (
	"math"
	"sync"
	"testing"
)

func TestMedianAbsConcurrentFirstTouch(t *testing.T) {
	// A mix of exact-table hits, analytic-path indices and a Monte-Carlo
	// fallback index (< 0.3), queried from many goroutines at once.
	alphas := []float64{0.27, 0.5, 0.8, 1, 1.25, 1.7, 2}
	const goroutines = 8

	results := make([][]float64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]float64, len(alphas))
			for i, a := range alphas {
				out[i] = MedianAbs(a)
			}
			results[g] = out
		}(g)
	}
	wg.Wait()

	for g := 1; g < goroutines; g++ {
		for i := range alphas {
			if math.Float64bits(results[g][i]) != math.Float64bits(results[0][i]) {
				t.Errorf("goroutine %d: MedianAbs(%v) = %v, goroutine 0 got %v",
					g, alphas[i], results[g][i], results[0][i])
			}
		}
	}
}
