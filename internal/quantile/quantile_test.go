package quantile

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestSelectSmall(t *testing.T) {
	cases := []struct {
		data []float64
		k    int
		want float64
	}{
		{[]float64{1}, 0, 1},
		{[]float64{2, 1}, 0, 1},
		{[]float64{2, 1}, 1, 2},
		{[]float64{3, 1, 2}, 0, 1},
		{[]float64{3, 1, 2}, 1, 2},
		{[]float64{3, 1, 2}, 2, 3},
		{[]float64{5, 5, 5, 5}, 2, 5},
		{[]float64{-1, 0, 1, -2}, 0, -2},
		{[]float64{-1, 0, 1, -2}, 3, 1},
	}
	for _, c := range cases {
		data := append([]float64(nil), c.data...)
		if got := Select(data, c.k); got != c.want {
			t.Errorf("Select(%v, %d) = %v, want %v", c.data, c.k, got, c.want)
		}
	}
}

func TestSelectMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.IntN(64)
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.NormFloat64()
		}
		sorted := append([]float64(nil), data...)
		sort.Float64s(sorted)
		k := rng.IntN(n)
		cp := append([]float64(nil), data...)
		if got := Select(cp, k); got != sorted[k] {
			t.Fatalf("trial %d: Select(_, %d) = %v, want %v (data %v)", trial, k, got, sorted[k], data)
		}
	}
}

func TestSelectDuplicates(t *testing.T) {
	data := []float64{3, 3, 1, 1, 2, 2, 3, 1}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	for k := range data {
		cp := append([]float64(nil), data...)
		if got := Select(cp, k); got != sorted[k] {
			t.Errorf("Select(dups, %d) = %v, want %v", k, got, sorted[k])
		}
	}
}

func TestSelectPanics(t *testing.T) {
	assertPanics(t, "empty", func() { Select(nil, 0) })
	assertPanics(t, "neg", func() { Select([]float64{1}, -1) })
	assertPanics(t, "high", func() { Select([]float64{1}, 1) })
}

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %v, want 2.5", got)
	}
	if got := Median([]float64{7}); got != 7 {
		t.Errorf("single median = %v, want 7", got)
	}
	if got := Median([]float64{1, 2}); got != 1.5 {
		t.Errorf("pair median = %v, want 1.5", got)
	}
}

func TestMedianPanicsEmpty(t *testing.T) {
	assertPanics(t, "empty", func() { Median(nil) })
}

func TestMedianCopyPreservesInput(t *testing.T) {
	data := []float64{5, 1, 4, 2, 3}
	orig := append([]float64(nil), data...)
	if got := MedianCopy(data); got != 3 {
		t.Errorf("MedianCopy = %v, want 3", got)
	}
	for i := range data {
		if data[i] != orig[i] {
			t.Fatalf("MedianCopy mutated input at %d: %v != %v", i, data[i], orig[i])
		}
	}
}

// Property: Median matches the sort-based definition on random inputs.
func TestMedianProperty(t *testing.T) {
	f := func(raw []float64) bool {
		data := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				data = append(data, v)
			}
		}
		if len(data) == 0 {
			return true
		}
		sorted := append([]float64(nil), data...)
		sort.Float64s(sorted)
		var want float64
		n := len(sorted)
		if n%2 == 1 {
			want = sorted[n/2]
		} else {
			want = (sorted[n/2-1] + sorted[n/2]) / 2
		}
		got := MedianCopy(data)
		return got == want || math.Abs(got-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuantileEndpointsAndMid(t *testing.T) {
	data := []float64{10, 20, 30, 40, 50}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 10}, {1, 50}, {0.5, 30}, {0.25, 20}, {0.75, 40},
		{0.1, 14}, // interpolated: pos=0.4 between 10 and 20
	}
	for _, c := range cases {
		cp := append([]float64(nil), data...)
		if got := Quantile(cp, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileSingle(t *testing.T) {
	if got := Quantile([]float64{42}, 0.9); got != 42 {
		t.Errorf("Quantile single = %v, want 42", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	assertPanics(t, "empty", func() { Quantile(nil, 0.5) })
	assertPanics(t, "low", func() { Quantile([]float64{1}, -0.1) })
	assertPanics(t, "high", func() { Quantile([]float64{1}, 1.1) })
	assertPanics(t, "nan", func() { Quantile([]float64{1}, math.NaN()) })
}

// Property: Quantile is monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.IntN(40)
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.NormFloat64() * 10
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			cp := append([]float64(nil), data...)
			v := Quantile(cp, q)
			if v < prev-1e-9 {
				t.Fatalf("trial %d: quantile not monotone at q=%v: %v < %v", trial, q, v, prev)
			}
			prev = v
		}
	}
}

func TestAbsMedianDiff(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 0, 3}
	scratch := make([]float64, 3)
	// |1-4|=3, |2-0|=2, |3-3|=0 -> median 2
	if got := AbsMedianDiff(a, b, scratch); got != 2 {
		t.Errorf("AbsMedianDiff = %v, want 2", got)
	}
}

func TestAbsMedianDiffMismatch(t *testing.T) {
	assertPanics(t, "len", func() { AbsMedianDiff([]float64{1}, []float64{1, 2}, make([]float64, 2)) })
	assertPanics(t, "scratch", func() { AbsMedianDiff([]float64{1}, []float64{2}, nil) })
}

func TestAbsMedianDiffSymmetric(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.IntN(33)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i], b[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		s1 := make([]float64, n)
		s2 := make([]float64, n)
		if d1, d2 := AbsMedianDiff(a, b, s1), AbsMedianDiff(b, a, s2); d1 != d2 {
			t.Fatalf("AbsMedianDiff not symmetric: %v vs %v", d1, d2)
		}
	}
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}
