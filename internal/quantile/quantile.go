// Package quantile provides selection-based order statistics used by the
// sketch estimators: k-th smallest element, medians, and simple quantiles.
//
// The sketch distance estimator of the paper takes the median of k absolute
// sketch differences for every distance query, so median selection is on the
// hot path of every sketched comparison. Selection runs in expected O(n)
// time (quickselect with median-of-three pivoting) instead of the O(n log n)
// a full sort would cost, and operates on a caller-provided scratch buffer
// so the per-query allocation can be amortized away.
package quantile

import (
	"fmt"
	"math"
)

// Select returns the k-th smallest element (0-indexed) of data.
// It partially reorders data in place. It panics if data is empty or k is
// out of range, since callers control both and an out-of-range k is a bug.
func Select(data []float64, k int) float64 {
	if len(data) == 0 {
		panic("quantile: Select on empty slice")
	}
	if k < 0 || k >= len(data) {
		panic(fmt.Sprintf("quantile: Select index %d out of range [0,%d)", k, len(data)))
	}
	lo, hi := 0, len(data)-1
	for {
		if lo == hi {
			return data[lo]
		}
		p := partition(data, lo, hi)
		switch {
		case k == p:
			return data[k]
		case k < p:
			hi = p - 1
		default:
			lo = p + 1
		}
	}
}

// partition partitions data[lo:hi+1] around a median-of-three pivot and
// returns the pivot's final index.
func partition(data []float64, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// Median-of-three: order data[lo], data[mid], data[hi].
	if data[mid] < data[lo] {
		data[mid], data[lo] = data[lo], data[mid]
	}
	if data[hi] < data[lo] {
		data[hi], data[lo] = data[lo], data[hi]
	}
	if data[hi] < data[mid] {
		data[hi], data[mid] = data[mid], data[hi]
	}
	// Use the median (now at mid) as pivot; park it at hi-1.
	if hi-lo < 2 {
		return mid // two elements already ordered
	}
	data[mid], data[hi-1] = data[hi-1], data[mid]
	pivot := data[hi-1]
	i := lo
	for j := lo; j < hi-1; j++ {
		if data[j] < pivot {
			data[i], data[j] = data[j], data[i]
			i++
		}
	}
	data[i], data[hi-1] = data[hi-1], data[i]
	return i
}

// Median returns the median of data, partially reordering it in place.
// For even-length input it returns the mean of the two central elements,
// which keeps the estimator unbiased for symmetric distributions.
// It panics on empty input.
func Median(data []float64) float64 {
	n := len(data)
	if n == 0 {
		panic("quantile: Median of empty slice")
	}
	if n%2 == 1 {
		return Select(data, n/2)
	}
	hi := Select(data, n/2)
	// After Select(n/2), every element left of n/2 is <= data[n/2], so the
	// lower central element is the max of the left half.
	lo := math.Inf(-1)
	for _, v := range data[:n/2] {
		if v > lo {
			lo = v
		}
	}
	return (lo + hi) / 2
}

// MedianCopy returns the median without modifying data.
func MedianCopy(data []float64) float64 {
	tmp := make([]float64, len(data))
	copy(tmp, data)
	return Median(tmp)
}

// Quantile returns the q-quantile of data for q in [0,1], partially
// reordering data in place. It uses the nearest-rank method with linear
// interpolation between adjacent order statistics, matching the behaviour
// of common statistics packages (type-7 quantiles).
// It panics on empty input or q outside [0,1].
func Quantile(data []float64, q float64) float64 {
	n := len(data)
	if n == 0 {
		panic("quantile: Quantile of empty slice")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic(fmt.Sprintf("quantile: q=%v outside [0,1]", q))
	}
	if n == 1 {
		return data[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	v := Select(data, lo)
	if frac == 0 {
		return v
	}
	// The next order statistic is the min of the right partition.
	next := math.Inf(1)
	for _, x := range data[lo+1:] {
		if x < next {
			next = x
		}
	}
	return v + frac*(next-v)
}

// AbsMedianDiff fills scratch with |a[i]-b[i]| and returns its median.
// scratch must have the same length as a and b. This is the inner loop of
// the paper's sketch distance estimator (Theorem 1/2): given two sketch
// vectors, the estimate is the median of component-wise absolute
// differences. It panics if the lengths disagree.
func AbsMedianDiff(a, b, scratch []float64) float64 {
	if len(a) != len(b) || len(a) != len(scratch) {
		panic(fmt.Sprintf("quantile: AbsMedianDiff length mismatch %d/%d/%d", len(a), len(b), len(scratch)))
	}
	for i := range a {
		scratch[i] = math.Abs(a[i] - b[i])
	}
	return Median(scratch)
}
