package quantile

// Fuzz targets cross-checking the quickselect order statistics against a
// full sort — the obviously-correct reference. Select and Median sit on
// the hot path of every sketched distance (AbsMedianDiff), so a
// selection bug would silently skew every estimate; the fuzzer hunts for
// pivot/partition edge cases (duplicates, pre-sorted runs, ±Inf,
// signed zeros) that hand-written tables miss.

import (
	"encoding/binary"
	"math"
	"sort"
	"testing"
)

// floatsFromBytes decodes data into a bounded slice of non-NaN floats.
// NaNs are excluded because order statistics are undefined under a
// partial order — the package contract is NaN-free input.
func floatsFromBytes(data []byte) []float64 {
	const maxLen = 512
	out := make([]float64, 0, maxLen)
	for len(data) >= 8 && len(out) < maxLen {
		v := math.Float64frombits(binary.LittleEndian.Uint64(data[:8]))
		data = data[8:]
		if math.IsNaN(v) {
			continue
		}
		out = append(out, v)
	}
	return out
}

func eq(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

func FuzzSelectAgainstSort(f *testing.F) {
	f.Add([]byte{}, uint16(0))
	f.Add(bytesOf(3, 1, 2), uint16(1))
	f.Add(bytesOf(5, 5, 5, 5), uint16(2))
	f.Add(bytesOf(math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1)), uint16(3))
	f.Fuzz(func(t *testing.T, data []byte, kRaw uint16) {
		vals := floatsFromBytes(data)
		if len(vals) == 0 {
			t.Skip()
		}
		k := int(kRaw) % len(vals)
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)

		work := append([]float64(nil), vals...)
		if got := Select(work, k); !eq(got, sorted[k]) {
			t.Errorf("Select(%v, %d) = %v, sorted reference %v", vals, k, got, sorted[k])
		}
	})
}

func FuzzMedianAndQuantileAgainstSort(f *testing.F) {
	f.Add(bytesOf(1, 2, 3, 4), uint16(500))
	f.Add(bytesOf(2, 1), uint16(0))
	f.Add(bytesOf(-1, 0, 1, 2, 3), uint16(1000))
	f.Fuzz(func(t *testing.T, data []byte, qRaw uint16) {
		vals := floatsFromBytes(data)
		if len(vals) == 0 {
			t.Skip()
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		n := len(vals)

		work := append([]float64(nil), vals...)
		wantMedian := sorted[n/2]
		if n%2 == 0 {
			wantMedian = (sorted[n/2-1] + sorted[n/2]) / 2
		}
		if got := Median(work); !eq(got, wantMedian) {
			t.Errorf("Median(%v) = %v, sorted reference %v", vals, got, wantMedian)
		}

		q := float64(qRaw%1001) / 1000 // q ∈ [0, 1] on a fixed lattice
		pos := q * float64(n-1)
		lo := int(math.Floor(pos))
		frac := pos - float64(lo)
		wantQ := sorted[lo]
		if frac != 0 {
			// Same interpolation arithmetic as the implementation, on the
			// same order statistics, so results must match exactly.
			wantQ = sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
		}
		work = append(work[:0], vals...)
		if got := Quantile(work, q); !eq(got, wantQ) {
			t.Errorf("Quantile(%v, %v) = %v, sorted reference %v", vals, q, got, wantQ)
		}
	})
}

// bytesOf encodes floats for seed-corpus entries.
func bytesOf(vals ...float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}
