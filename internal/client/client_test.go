// White-box tests of the retry policy: backoff shape, Retry-After
// handling, budgets, and which failure classes retry at all. Servers
// are plain httptest handlers; flaky behavior comes from
// faultinject.FailNth, so every scenario replays identically.
package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/server"
	"repro/internal/table"
)

func okDistance(w http.ResponseWriter) {
	json.NewEncoder(w).Encode(server.DistanceResult{Distance: 42, Tier: server.TierSketch})
}

// instant is a Sleep hook that never actually waits.
func instant(context.Context, time.Duration) error { return nil }

var testRects = struct{ a, b table.Rect }{
	a: table.Rect{R0: 0, C0: 0, Rows: 4, Cols: 4},
	b: table.Rect{R0: 4, C0: 4, Rows: 4, Cols: 4},
}

func TestRetryAfterHintHonored(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		okDistance(w)
	}))
	defer ts.Close()

	var slept []time.Duration
	c, err := New(Config{
		BaseURL: ts.URL, BaseDelay: time.Millisecond, Budget: time.Hour, Seed: 1,
		Sleep: func(_ context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Distance(context.Background(), testRects.a, testRects.b, "")
	if err != nil {
		t.Fatalf("Distance: %v", err)
	}
	if res.Distance != 42 {
		t.Errorf("distance %v, want 42", res.Distance)
	}
	if calls.Load() != 3 {
		t.Errorf("server saw %d calls, want 3", calls.Load())
	}
	// The 1s server hint dominates the millisecond-scale backoff: both
	// waits are exactly the hint.
	if len(slept) != 2 || slept[0] != time.Second || slept[1] != time.Second {
		t.Errorf("sleeps %v, want [1s 1s] (Retry-After hint)", slept)
	}
}

func TestRetryAfterHintCapped(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "3600")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		okDistance(w)
	}))
	defer ts.Close()

	var slept []time.Duration
	c, err := New(Config{
		BaseURL: ts.URL, BaseDelay: time.Millisecond, Budget: time.Hour,
		RetryAfterCap: 2 * time.Second,
		Sleep: func(_ context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Distance(context.Background(), testRects.a, testRects.b, ""); err != nil {
		t.Fatalf("Distance: %v", err)
	}
	if len(slept) != 1 || slept[0] != 2*time.Second {
		t.Errorf("sleeps %v, want the hint capped to [2s]", slept)
	}
}

func TestFlakyServerErrorRetried(t *testing.T) {
	trig := faultinject.FailNth(1)
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if err := trig(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		okDistance(w)
	}))
	defer ts.Close()

	c, err := New(Config{BaseURL: ts.URL, Sleep: instant})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Distance(context.Background(), testRects.a, testRects.b, ""); err != nil {
		t.Fatalf("Distance through flaky 500: %v", err)
	}
	if calls.Load() != 2 {
		t.Errorf("server saw %d calls, want 2 (one injected failure)", calls.Load())
	}
}

func TestTerminalStatusNotRetried(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]string{"error": "bad rect"})
	}))
	defer ts.Close()

	c, err := New(Config{BaseURL: ts.URL, Sleep: instant})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Distance(context.Background(), testRects.a, testRects.b, "")
	if err == nil || !strings.Contains(err.Error(), "bad rect") {
		t.Fatalf("err %v, want the server's error message", err)
	}
	if errors.Is(err, ErrBudgetExhausted) {
		t.Error("a 400 is terminal, not a budget exhaustion")
	}
	if calls.Load() != 1 {
		t.Errorf("server saw %d calls, want 1 (no retry on 4xx)", calls.Load())
	}
}

func TestAttemptsExhausted(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c, err := New(Config{BaseURL: ts.URL, MaxAttempts: 3, Budget: time.Hour, Sleep: instant})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Distance(context.Background(), testRects.a, testRects.b, "")
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err %v, want ErrBudgetExhausted", err)
	}
	if calls.Load() != 3 {
		t.Errorf("server saw %d calls, want exactly MaxAttempts=3", calls.Load())
	}
}

func TestWaitBudgetExhausted(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	// Every backoff waits at least BaseDelay/2 = 50ms, so a 120ms budget
	// admits at most two retries regardless of jitter.
	c, err := New(Config{
		BaseURL: ts.URL, MaxAttempts: 100,
		BaseDelay: 100 * time.Millisecond, MaxDelay: 100 * time.Millisecond,
		Budget: 120 * time.Millisecond, Sleep: instant,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Distance(context.Background(), testRects.a, testRects.b, "")
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err %v, want ErrBudgetExhausted", err)
	}
}

func TestTransportErrorRetried(t *testing.T) {
	// A listener that is already closed: every attempt is a connection
	// error, which is retryable, until attempts run out.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := ts.URL
	ts.Close()

	c, err := New(Config{BaseURL: url, MaxAttempts: 2, Budget: time.Hour, Sleep: instant})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Health(context.Background())
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err %v, want ErrBudgetExhausted wrapping the transport error", err)
	}
}

func TestContextCancelsSleep(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	// Default Sleep + a 10s backoff: the 20ms context must cut the wait.
	c, err := New(Config{BaseURL: ts.URL, BaseDelay: 10 * time.Second, Budget: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Distance(ctx, testRects.a, testRects.b, "")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v, the sleep was not cut short", elapsed)
	}
}

func TestBackoffDeterministicPerSeed(t *testing.T) {
	seq := func(seed uint64) []time.Duration {
		c, err := New(Config{BaseURL: "http://127.0.0.1:0", Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		var ds []time.Duration
		for n := 1; n <= 6; n++ {
			ds = append(ds, c.backoff(n, nil))
		}
		return ds
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at retry %d: %v vs %v", i+1, a[i], b[i])
		}
	}
	other := seq(8)
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical jitter sequences")
	}
	// Shape: each wait is in [base/2, base] for base = BaseDelay*2^(n-1)
	// capped at MaxDelay.
	cfg := Config{}
	cfg.setDefaults()
	for i, d := range a {
		base := cfg.BaseDelay << i
		if base > cfg.MaxDelay {
			base = cfg.MaxDelay
		}
		if d < base/2 || d > base {
			t.Errorf("retry %d wait %v outside [%v, %v]", i+1, d, base/2, base)
		}
	}
}

func TestNewValidatesBaseURL(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty BaseURL: want error")
	}
	if _, err := New(Config{BaseURL: "http://\x7f"}); err == nil {
		t.Error("unparsable BaseURL: want error")
	}
}
