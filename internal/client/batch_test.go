// Tests of the batched client methods (per-item decode, whole-batch
// retry) and the unparsable-Retry-After satellite: counted, logged
// once, hint ignored.
package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/table"
)

// batchHandler answers /v1/batch/distance with one valid item, one
// item error, and echoes how many requests it saw.
func batchHandler(calls *atomic.Int64, failFirst int64) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= failFirst {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		if r.Method != http.MethodPost {
			http.Error(w, "want POST", http.StatusMethodNotAllowed)
			return
		}
		var req server.BatchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp := server.BatchResponse{Items: make([]json.RawMessage, len(req.Items))}
		for i := range req.Items {
			if i == 1 {
				resp.Items[i], _ = json.Marshal(map[string]string{"error": "rect out of bounds"})
				resp.Failed++
				continue
			}
			resp.Items[i], _ = json.Marshal(server.DistanceResult{Distance: float64(i), Tier: server.TierSketch})
			resp.Served++
		}
		json.NewEncoder(w).Encode(&resp)
	}
}

func TestDistanceBatchPerItemResults(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(batchHandler(&calls, 0))
	defer ts.Close()

	c, err := New(Config{BaseURL: ts.URL, Sleep: instant})
	if err != nil {
		t.Fatal(err)
	}
	rects := []table.Rect{{Rows: 4, Cols: 4}, {R0: 99, Rows: 4, Cols: 4}, {R0: 8, Rows: 4, Cols: 4}}
	items, err := c.DistanceBatch(context.Background(), rects, rects, server.ModeSketch)
	if err != nil {
		t.Fatalf("DistanceBatch: %v", err)
	}
	if len(items) != 3 {
		t.Fatalf("got %d items, want 3", len(items))
	}
	if items[0].Err != nil || items[0].Result == nil || items[0].Result.Distance != 0 {
		t.Errorf("item 0: %+v", items[0])
	}
	if items[1].Err == nil || !strings.Contains(items[1].Err.Error(), "rect out of bounds") {
		t.Errorf("item 1: want wrapped server error, got %+v", items[1])
	}
	if items[1].Result != nil {
		t.Errorf("item 1 carries a result alongside its error: %+v", items[1].Result)
	}
	if items[2].Err != nil || items[2].Result == nil || items[2].Result.Distance != 2 {
		t.Errorf("item 2: %+v", items[2])
	}
}

// TestBatchRetriesWholeBatch: a shed batch re-sends the identical body
// under the usual backoff policy.
func TestBatchRetriesWholeBatch(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(batchHandler(&calls, 2))
	defer ts.Close()

	c, err := New(Config{BaseURL: ts.URL, Sleep: instant, Budget: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	rects := []table.Rect{{Rows: 4, Cols: 4}}
	items, err := c.DistanceBatch(context.Background(), rects, rects, "")
	if err != nil {
		t.Fatalf("DistanceBatch after sheds: %v", err)
	}
	if calls.Load() != 3 {
		t.Errorf("server saw %d calls, want 3 (2 sheds + success)", calls.Load())
	}
	if items[0].Err != nil {
		t.Errorf("item 0: %v", items[0].Err)
	}
}

func TestBatchLengthValidation(t *testing.T) {
	c, err := New(Config{BaseURL: "http://127.0.0.1:0", Sleep: instant})
	if err != nil {
		t.Fatal(err)
	}
	r := []table.Rect{{Rows: 4, Cols: 4}}
	if _, err := c.DistanceBatch(context.Background(), r, nil, ""); err == nil {
		t.Error("mismatched batch lengths: want error")
	}
	if _, err := c.NearestBatch(context.Background(), nil, ""); err == nil {
		t.Error("empty batch: want error")
	}

	// A server answering the wrong item count is a protocol error.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(server.BatchResponse{Items: []json.RawMessage{}})
	}))
	defer ts.Close()
	c2, err := New(Config{BaseURL: ts.URL, Sleep: instant})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.NearestBatch(context.Background(), r, ""); err == nil || !strings.Contains(err.Error(), "0 items for 1") {
		t.Errorf("short response: got %v, want item-count mismatch", err)
	}
}

// TestRetryAfterUnparsable is the satellite acceptance: a malformed
// non-empty Retry-After header bumps the retry_after_unparsed expvar,
// logs exactly once per client, and falls back to plain backoff (the
// bogus hint must not be honored).
func TestRetryAfterUnparsable(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "Wed, 21 Oct 2015 07:28:00 GMT")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		okDistance(w)
	}))
	defer ts.Close()

	var logs []string
	var slept []time.Duration
	c, err := New(Config{
		BaseURL: ts.URL, BaseDelay: time.Millisecond, Budget: time.Hour, Seed: 1,
		Sleep: func(_ context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
		Logf: func(format string, args ...any) {
			logs = append(logs, format)
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	before := mRetryAfterUnparsed.Value()
	if _, err := c.Distance(context.Background(), testRects.a, testRects.b, ""); err != nil {
		t.Fatalf("Distance: %v", err)
	}
	if got := mRetryAfterUnparsed.Value() - before; got != 2 {
		t.Errorf("retry_after_unparsed advanced %d, want 2", got)
	}
	if len(logs) != 1 {
		t.Errorf("logged %d times, want exactly once: %q", len(logs), logs)
	}
	// The bogus HTTP-date (a timestamp far in the past encoded in a form
	// we don't support) must not become a wait: both sleeps stay at
	// millisecond-scale backoff, nowhere near a parsed-hint second.
	for _, d := range slept {
		if d >= time.Second {
			t.Errorf("sleep %v suggests the malformed hint was honored", d)
		}
	}
}
