// Package client is the retrying counterpart of internal/server: a
// sketch-query client with jittered exponential backoff, a retry
// budget, and Retry-After handling, so callers ride out load shedding
// (503), deadline misses (504), and transient transport failures
// without hand-rolled loops — and without retry storms: every delay is
// jittered, and the total time spent waiting is capped.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"repro/internal/server"
	"repro/internal/table"
)

// Config tunes the retry policy. The zero value (plus BaseURL) gets
// sensible defaults from New.
type Config struct {
	// BaseURL locates the server, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the transport; nil builds a dedicated http.Client.
	HTTP *http.Client
	// MaxAttempts bounds tries per query, first included (default 5).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff: the nth retry waits
	// about BaseDelay·2ⁿ, jittered to [½,1]× (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps a single backoff wait (default 2s).
	MaxDelay time.Duration
	// Budget caps the total time spent waiting between retries across
	// one query — the retry budget (default 15s).
	Budget time.Duration
	// RetryAfterCap bounds how long a server Retry-After hint is
	// honored (default 5s).
	RetryAfterCap time.Duration
	// Seed drives the backoff jitter deterministically (0 means 1).
	Seed uint64
	// Sleep is the wait primitive, injectable for tests. nil sleeps on
	// a timer, returning early with ctx's error on cancellation.
	Sleep func(ctx context.Context, d time.Duration) error
	// Logf receives operational warnings (e.g. an unparsable
	// Retry-After header); nil is silent.
	Logf func(format string, args ...any)
}

func (c *Config) setDefaults() {
	if c.HTTP == nil {
		c.HTTP = &http.Client{}
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 50 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Second
	}
	if c.Budget <= 0 {
		c.Budget = 15 * time.Second
	}
	if c.RetryAfterCap <= 0 {
		c.RetryAfterCap = 5 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Sleep == nil {
		c.Sleep = sleepCtx
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ErrBudgetExhausted wraps the final attempt's error when the retry
// budget (attempts or waiting time) runs out. Check with errors.Is.
var ErrBudgetExhausted = errors.New("client: retry budget exhausted")

// mRetryAfterUnparsed counts Retry-After headers that were present but
// not parsable as non-negative integer seconds: the hint is ignored
// (plain backoff still applies) but silently dropping a malformed
// header across a whole fleet hides a server bug, so it is surfaced on
// /debug/vars of any process embedding this client.
var mRetryAfterUnparsed = expvar.NewInt("retry_after_unparsed")

// Client issues queries with retries. Safe for concurrent use.
type Client struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand

	// warnRetryAfter limits the unparsable-Retry-After log line to once
	// per client; the expvar counter keeps the full count.
	warnRetryAfter sync.Once
}

// New builds a Client for cfg.BaseURL.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("client: BaseURL required")
	}
	if _, err := url.Parse(cfg.BaseURL); err != nil {
		return nil, fmt.Errorf("client: bad BaseURL: %w", err)
	}
	cfg.setDefaults()
	return &Client{
		cfg: cfg,
		rng: rand.New(rand.NewPCG(cfg.Seed, 0x636c69656e74)),
	}, nil
}

// Distance queries /v1/distance for rectangles a and b. mode is one of
// server.ModeAuto/ModeExact/ModeSketch ("" means auto).
func (c *Client) Distance(ctx context.Context, a, b table.Rect, mode string) (*server.DistanceResult, error) {
	vals := url.Values{"a": {server.FormatRect(a)}, "b": {server.FormatRect(b)}}
	var res server.DistanceResult
	if err := c.do(ctx, "/v1/distance", vals, mode, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Nearest queries /v1/nearest for the grid tile closest to q.
func (c *Client) Nearest(ctx context.Context, q table.Rect, mode string) (*server.NearestResult, error) {
	vals := url.Values{"q": {server.FormatRect(q)}}
	var res server.NearestResult
	if err := c.do(ctx, "/v1/nearest", vals, mode, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// NearestPruned queries /v1/nearest in mode=prune: the progressive
// confidence-margin scan with the given epsilon/delta knobs. Pass a
// negative value to keep the server's default for that knob.
func (c *Client) NearestPruned(ctx context.Context, q table.Rect, epsilon, delta float64) (*server.NearestResult, error) {
	vals := url.Values{"q": {server.FormatRect(q)}}
	addPruneKnobs(vals, epsilon, delta)
	var res server.NearestResult
	if err := c.do(ctx, "/v1/nearest", vals, server.ModePrune, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// AssignPruned queries /v1/assign in mode=prune (see NearestPruned).
func (c *Client) AssignPruned(ctx context.Context, q table.Rect, epsilon, delta float64) (*server.AssignResult, error) {
	vals := url.Values{"q": {server.FormatRect(q)}}
	addPruneKnobs(vals, epsilon, delta)
	var res server.AssignResult
	if err := c.do(ctx, "/v1/assign", vals, server.ModePrune, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

func addPruneKnobs(vals url.Values, epsilon, delta float64) {
	if epsilon >= 0 {
		vals.Set("epsilon", strconv.FormatFloat(epsilon, 'g', -1, 64))
	}
	if delta >= 0 {
		vals.Set("delta", strconv.FormatFloat(delta, 'g', -1, 64))
	}
}

// Assign queries /v1/assign for q's cluster.
func (c *Client) Assign(ctx context.Context, q table.Rect, mode string) (*server.AssignResult, error) {
	vals := url.Values{"q": {server.FormatRect(q)}}
	var res server.AssignResult
	if err := c.do(ctx, "/v1/assign", vals, mode, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Health queries /healthz (no retries beyond the shared policy).
func (c *Client) Health(ctx context.Context) (*server.Health, error) {
	var res server.Health
	if err := c.do(ctx, "/healthz", url.Values{}, "", &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// do runs the retry loop around one GET query.
func (c *Client) do(ctx context.Context, path string, vals url.Values, mode string, out any) error {
	if mode != "" {
		vals.Set("mode", mode)
	}
	u := c.cfg.BaseURL + path
	if enc := vals.Encode(); enc != "" {
		u += "?" + enc
	}
	return c.doRetry(ctx, u, nil, out)
}

// post runs the retry loop around one POST query: the body marshals
// once and is re-sent verbatim on every attempt.
func (c *Client) post(ctx context.Context, path string, reqBody, out any) error {
	body, err := json.Marshal(reqBody)
	if err != nil {
		return fmt.Errorf("client: marshal request: %w", err)
	}
	return c.doRetry(ctx, c.cfg.BaseURL+path, body, out)
}

// doRetry is the shared retry loop; body == nil issues GETs, non-nil
// issues POSTs.
func (c *Client) doRetry(ctx context.Context, u string, body []byte, out any) error {
	var waited time.Duration
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			delay := c.backoff(attempt, lastErr)
			if waited+delay > c.cfg.Budget {
				return fmt.Errorf("%w after %d attempts (%v waited): %w",
					ErrBudgetExhausted, attempt, waited, lastErr)
			}
			if err := c.cfg.Sleep(ctx, delay); err != nil {
				return fmt.Errorf("client: %w (last attempt: %w)", err, lastErr)
			}
			waited += delay
		}
		retryable, err := c.attempt(ctx, u, body, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable {
			return err
		}
		if ctx.Err() != nil {
			return fmt.Errorf("client: %w (last attempt: %w)", ctx.Err(), lastErr)
		}
	}
	return fmt.Errorf("%w after %d attempts (%v waited): %w",
		ErrBudgetExhausted, c.cfg.MaxAttempts, waited, lastErr)
}

// StatusError is a non-2xx server answer. Callers that route around
// failures (the scatter-gather coordinator) use the code to separate
// endpoint trouble (5xx — strike the endpoint, try a replica) from
// query trouble (4xx — the query is wrong everywhere, fail fast).
// Retrieve it with errors.As; retry wrappers may bury it under
// ErrBudgetExhausted or a Retry-After carrier.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("client: server answered %d: %s", e.Code, e.Msg)
}

// retryAfterError carries a server Retry-After hint through the loop.
type retryAfterError struct {
	err  error
	hint time.Duration
}

func (e *retryAfterError) Error() string { return e.err.Error() }
func (e *retryAfterError) Unwrap() error { return e.err }

// attempt performs one HTTP round trip (GET, or POST when reqBody is
// non-nil). retryable reports whether the failure class can succeed on
// retry (shed, timeout, transport).
func (c *Client) attempt(ctx context.Context, u string, reqBody []byte, out any) (retryable bool, err error) {
	method, rd := http.MethodGet, io.Reader(nil)
	if reqBody != nil {
		method, rd = http.MethodPost, bytes.NewReader(reqBody)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		return false, err
	}
	if reqBody != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.cfg.HTTP.Do(req)
	if err != nil {
		return true, err // transport errors (refused, reset) are retryable
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return true, err
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, out); err != nil {
			// A 200 whose body does not decode is a response damaged in
			// transit — a connection reset mid-body or a truncating
			// middlebox — not a malformed query: the server committed to
			// an answer, so re-asking is safe and likely to succeed.
			// (Classifying this as permanent was a real availability bug:
			// one reset during the body failed queries that one retry
			// would have served.)
			return true, fmt.Errorf("client: undecodable 200 body (%d bytes): %w", len(body), err)
		}
		return false, nil
	}
	msg := string(body)
	var eb struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
		msg = eb.Error
	}
	herr := error(&StatusError{Code: resp.StatusCode, Msg: msg})
	// Retryable failure classes: shedding (503), deadline misses (504),
	// rate limiting (429), and other transient 5xx (the flaky-nth-request
	// fault). 4xx means the query itself is wrong — retrying cannot help.
	if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
		if ra := c.parseRetryAfter(resp.Header.Get("Retry-After")); ra > 0 {
			return true, &retryAfterError{err: herr, hint: ra}
		}
		return true, herr
	}
	return false, herr
}

// backoff computes the jittered wait before retry n (1-based), honoring
// a server hint when one came with the last failure.
func (c *Client) backoff(n int, lastErr error) time.Duration {
	d := c.cfg.BaseDelay << (n - 1)
	if d > c.cfg.MaxDelay || d <= 0 {
		d = c.cfg.MaxDelay
	}
	// Equal jitter: [½,1]× spreads synchronized retriers while keeping
	// the wait long enough to matter.
	c.mu.Lock()
	d = d/2 + time.Duration(c.rng.Int64N(int64(d/2)+1))
	c.mu.Unlock()
	var rae *retryAfterError
	if errors.As(lastErr, &rae) {
		hint := min(rae.hint, c.cfg.RetryAfterCap)
		if hint > d {
			d = hint
		}
	}
	return d
}

// parseRetryAfter interprets a Retry-After header as integer seconds.
// A header that is present but unparsable is ignored — plain backoff
// still applies — but counted on the retry_after_unparsed expvar and
// logged once per client, so a misbehaving server surfaces instead of
// silently shortening every wait.
func (c *Client) parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	mRetryAfterUnparsed.Add(1)
	c.warnRetryAfter.Do(func() {
		c.cfg.Logf("client: ignoring unparsable Retry-After header %q", h)
	})
	return 0
}
