package client

import (
	"context"
	"net/url"
	"strconv"
	"time"

	"repro/internal/server"
	"repro/internal/table"
)

// Shard sub-query surface: the client half of the scatter-gather
// protocol (see internal/server's /v1/shardinfo and /v1/sketch*
// endpoints). The coordinator calls these against individual shards;
// all rectangles and indices are in the target shard's LOCAL
// coordinates. The shared retry loop applies — shed sub-queries (503)
// back off and re-ask within the caller's context deadline.

// Ready queries /readyz: 200 once the server publishes its first
// snapshot, 503 while booting. The 503 is retryable under the shared
// policy, so a plain Ready call with a deadline doubles as "wait until
// ready"; probers that want a single un-retried probe should use
// MaxAttempts=1.
func (c *Client) Ready(ctx context.Context) (*server.Ready, error) {
	var res server.Ready
	if err := c.do(ctx, "/readyz", url.Values{}, "", &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// ShardInfo queries /v1/shardinfo: the shard's self-description
// (column placement, geometry, sketch parameters, snapshot generation).
func (c *Client) ShardInfo(ctx context.Context) (*server.ShardInfo, error) {
	var res server.ShardInfo
	if err := c.do(ctx, "/v1/shardinfo", url.Values{}, "", &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// subVals builds the query values shared by the sub-query endpoints:
// timeout > 0 bounds the shard-side computation via timeout_ms (the
// coordinator carves these from its request budget).
func subVals(timeout time.Duration) url.Values {
	vals := url.Values{}
	if timeout > 0 {
		ms := int(timeout / time.Millisecond)
		if ms < 1 {
			ms = 1
		}
		vals.Set("timeout_ms", strconv.Itoa(ms))
	}
	return vals
}

// Sketch queries GET /v1/sketch for the pool sketch of one rectangle in
// the shard's local coordinates.
func (c *Client) Sketch(ctx context.Context, rect table.Rect, timeout time.Duration) (*server.SketchResult, error) {
	vals := subVals(timeout)
	vals.Set("rect", server.FormatRect(rect))
	var res server.SketchResult
	if err := c.do(ctx, "/v1/sketch", vals, "", &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// SketchNearest posts a query sketch to /v1/sketch/nearest: the shard's
// best local tile under the O(k) estimator.
func (c *Client) SketchNearest(ctx context.Context, req *server.SketchQueryRequest, timeout time.Duration) (*server.SketchBest, error) {
	return c.postSketchQuery(ctx, "/v1/sketch/nearest", req, timeout)
}

// SketchAssign posts a query sketch to /v1/sketch/assign: the shard's
// best local medoid under the O(k) estimator.
func (c *Client) SketchAssign(ctx context.Context, req *server.SketchQueryRequest, timeout time.Duration) (*server.SketchBest, error) {
	return c.postSketchQuery(ctx, "/v1/sketch/assign", req, timeout)
}

func (c *Client) postSketchQuery(ctx context.Context, path string, req *server.SketchQueryRequest, timeout time.Duration) (*server.SketchBest, error) {
	if enc := subVals(timeout).Encode(); enc != "" {
		path += "?" + enc
	}
	var res server.SketchBest
	if err := c.post(ctx, path, req, &res); err != nil {
		return nil, err
	}
	return &res, nil
}
