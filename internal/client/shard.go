package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/server"
	"repro/internal/table"
)

// Shard sub-query surface: the client half of the scatter-gather
// protocol (see internal/server's /v1/shardinfo and /v1/sketch*
// endpoints). The coordinator calls these against individual shards;
// all rectangles and indices are in the target shard's LOCAL
// coordinates. The shared retry loop applies — shed sub-queries (503)
// back off and re-ask within the caller's context deadline.

// Ready queries /readyz: 200 once the server publishes its first
// snapshot, 503 while booting. The 503 is retryable under the shared
// policy, so a plain Ready call with a deadline doubles as "wait until
// ready"; probers that want a single un-retried probe should use
// MaxAttempts=1.
func (c *Client) Ready(ctx context.Context) (*server.Ready, error) {
	var res server.Ready
	if err := c.do(ctx, "/readyz", url.Values{}, "", &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// ShardInfo queries /v1/shardinfo: the shard's self-description
// (column placement, geometry, sketch parameters, snapshot generation).
func (c *Client) ShardInfo(ctx context.Context) (*server.ShardInfo, error) {
	var res server.ShardInfo
	if err := c.do(ctx, "/v1/shardinfo", url.Values{}, "", &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// subVals builds the query values shared by the sub-query endpoints:
// timeout > 0 bounds the shard-side computation via timeout_ms (the
// coordinator carves these from its request budget).
func subVals(timeout time.Duration) url.Values {
	vals := url.Values{}
	if timeout > 0 {
		ms := int(timeout / time.Millisecond)
		if ms < 1 {
			ms = 1
		}
		vals.Set("timeout_ms", strconv.Itoa(ms))
	}
	return vals
}

// Sketch queries GET /v1/sketch for the pool sketch of one rectangle in
// the shard's local coordinates.
func (c *Client) Sketch(ctx context.Context, rect table.Rect, timeout time.Duration) (*server.SketchResult, error) {
	vals := subVals(timeout)
	vals.Set("rect", server.FormatRect(rect))
	var res server.SketchResult
	if err := c.do(ctx, "/v1/sketch", vals, "", &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// SketchNearest posts a query sketch to /v1/sketch/nearest: the shard's
// best local tile under the O(k) estimator.
func (c *Client) SketchNearest(ctx context.Context, req *server.SketchQueryRequest, timeout time.Duration) (*server.SketchBest, error) {
	return c.postSketchQuery(ctx, "/v1/sketch/nearest", req, timeout)
}

// SketchAssign posts a query sketch to /v1/sketch/assign: the shard's
// best local medoid under the O(k) estimator.
func (c *Client) SketchAssign(ctx context.Context, req *server.SketchQueryRequest, timeout time.Duration) (*server.SketchBest, error) {
	return c.postSketchQuery(ctx, "/v1/sketch/assign", req, timeout)
}

func (c *Client) postSketchQuery(ctx context.Context, path string, req *server.SketchQueryRequest, timeout time.Duration) (*server.SketchBest, error) {
	if enc := subVals(timeout).Encode(); enc != "" {
		path += "?" + enc
	}
	var res server.SketchBest
	if err := c.post(ctx, path, req, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Ingest posts one record to POST /v1/ingest (a server's, or a
// coordinator's, which proxies to the shard owning the growing edge).
// Its retry policy is deliberately narrower than the shared loop: only
// a 503 (backpressure — the server guarantees nothing was stored)
// retries, honoring Retry-After within MaxAttempts/Budget. A transport
// error or timeout returns immediately even though retrying might
// succeed, because the record MAY have been applied — replaying it
// would double-ingest, and deduplication is the caller's policy, not
// this client's.
func (c *Client) Ingest(ctx context.Context, record []byte) (*server.IngestResult, error) {
	u := c.cfg.BaseURL + "/v1/ingest"
	var waited time.Duration
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			delay := c.backoff(attempt, lastErr)
			if waited+delay > c.cfg.Budget {
				return nil, fmt.Errorf("%w after %d attempts (%v waited): %w",
					ErrBudgetExhausted, attempt, waited, lastErr)
			}
			if err := c.cfg.Sleep(ctx, delay); err != nil {
				return nil, fmt.Errorf("client: %w (last attempt: %w)", err, lastErr)
			}
			waited += delay
		}
		res, err := c.ingestOnce(ctx, u, record)
		if err == nil {
			return res, nil
		}
		var se *StatusError
		if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
			return nil, err // ambiguous or permanent: caller owns the resend decision
		}
		lastErr = err
	}
	return nil, fmt.Errorf("%w after %d attempts (%v waited): %w",
		ErrBudgetExhausted, c.cfg.MaxAttempts, waited, lastErr)
}

func (c *Client) ingestOnce(ctx context.Context, u string, record []byte) (*server.IngestResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(record))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.cfg.HTTP.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: ingest transport: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("client: ingest response: %w", err)
	}
	if resp.StatusCode == http.StatusOK {
		var res server.IngestResult
		if err := json.Unmarshal(body, &res); err != nil {
			return nil, fmt.Errorf("client: undecodable ingest 200 body (%d bytes): %w", len(body), err)
		}
		return &res, nil
	}
	msg := string(body)
	var eb struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
		msg = eb.Error
	}
	herr := &StatusError{Code: resp.StatusCode, Msg: msg}
	if resp.StatusCode == http.StatusServiceUnavailable {
		if ra := c.parseRetryAfter(resp.Header.Get("Retry-After")); ra > 0 {
			return nil, &retryAfterError{err: herr, hint: ra}
		}
	}
	return nil, herr
}
