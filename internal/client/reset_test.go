// Regression tests for the mid-response-body failure classes: a 200
// whose body dies or arrives damaged is a transport casualty, not a bad
// query, and must retry. (The original classification treated an
// undecodable 200 body as permanent, so one connection reset during the
// response body failed a query that a single retry would have served.)
package client

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/faultinject"
)

// resetTransport wraps the body of the first response in a
// faultinject.SlowReader that returns ErrInjected on its FailAt-th
// Read — the client sees a connection die mid-body after delivering a
// valid prefix. Later responses pass through untouched.
type resetTransport struct {
	base   http.RoundTripper
	failAt int
	calls  atomic.Int64
}

type readCloser struct {
	io.Reader
	io.Closer
}

func (rt *resetTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := rt.base.RoundTrip(req)
	if err != nil || rt.calls.Add(1) > 1 {
		return resp, err
	}
	resp.Body = &readCloser{
		Reader: &faultinject.SlowReader{R: resp.Body, Chunk: 4, FailAt: rt.failAt},
		Closer: resp.Body,
	}
	return resp, nil
}

func TestResetMidBodyRetries(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		okDistance(w)
	}))
	defer ts.Close()

	rt := &resetTransport{base: http.DefaultTransport, failAt: 3}
	c, err := New(Config{
		BaseURL: ts.URL,
		HTTP:    &http.Client{Transport: rt},
		Sleep:   instant, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Distance(context.Background(), testRects.a, testRects.b, "")
	if err != nil {
		t.Fatalf("Distance after mid-body reset: %v", err)
	}
	if res.Distance != 42 {
		t.Errorf("distance %v, want 42", res.Distance)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("server saw %d calls, want 2 (reset attempt + retry)", got)
	}
}

func TestTruncated200BodyRetries(t *testing.T) {
	// A structurally valid HTTP response whose JSON was cut mid-object
	// (truncating middlebox): ReadAll succeeds, Unmarshal fails. This is
	// the exact path the permanent-classification bug lived on.
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			io.WriteString(w, `{"distance": 4`)
			return
		}
		okDistance(w)
	}))
	defer ts.Close()

	c, err := New(Config{BaseURL: ts.URL, Sleep: instant, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Distance(context.Background(), testRects.a, testRects.b, "")
	if err != nil {
		t.Fatalf("Distance after truncated 200 body: %v", err)
	}
	if res.Distance != 42 {
		t.Errorf("distance %v, want 42", res.Distance)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("server saw %d calls, want 2 (truncated attempt + retry)", got)
	}
}

func TestPersistentlyDamagedBodyExhaustsBudget(t *testing.T) {
	// Damage on every attempt must still terminate: the retryable
	// classification ends in ErrBudgetExhausted, not an infinite loop or
	// a silent wrong answer.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"distance": 4`)
	}))
	defer ts.Close()

	c, err := New(Config{BaseURL: ts.URL, MaxAttempts: 3, Sleep: instant, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Distance(context.Background(), testRects.a, testRects.b, "")
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
}
