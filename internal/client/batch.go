package client

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/server"
	"repro/internal/table"
)

// Batched queries: one POST carries up to the server's MaxBatch
// queries and pays the round trip, encode/decode, and admission once.
// The whole batch retries under the client's usual policy (the server
// either admits a batch or sheds it before executing anything, and
// answers are deterministic, so re-sending is safe); item-level
// failures do NOT retry — they are the query's own error, reported
// per item.

// DistanceItem is one DistanceBatch outcome: exactly one of Result and
// Err is set.
type DistanceItem struct {
	Result *server.DistanceResult
	Err    error
}

// NearestItem is one NearestBatch outcome.
type NearestItem struct {
	Result *server.NearestResult
	Err    error
}

// AssignItem is one AssignBatch outcome.
type AssignItem struct {
	Result *server.AssignResult
	Err    error
}

// DistanceBatch queries /v1/batch/distance for the pairwise distances
// (as[i], bs[i]). The returned slice always has len(as) entries.
func (c *Client) DistanceBatch(ctx context.Context, as, bs []table.Rect, mode string) ([]DistanceItem, error) {
	if len(as) != len(bs) {
		return nil, fmt.Errorf("client: %d a-rects vs %d b-rects", len(as), len(bs))
	}
	req := server.BatchRequest{Mode: mode, Items: make([]server.BatchItem, len(as))}
	for i := range as {
		req.Items[i] = server.BatchItem{A: server.FormatRect(as[i]), B: server.FormatRect(bs[i])}
	}
	raws, err := c.batch(ctx, "/v1/batch/distance", &req, len(as))
	if err != nil {
		return nil, err
	}
	out := make([]DistanceItem, len(raws))
	for i, raw := range raws {
		if err := itemError(raw); err != nil {
			out[i].Err = err
			continue
		}
		res := new(server.DistanceResult)
		if err := json.Unmarshal(raw, res); err != nil {
			out[i].Err = fmt.Errorf("client: bad item %d: %w", i, err)
			continue
		}
		out[i].Result = res
	}
	return out, nil
}

// NearestBatch queries /v1/batch/nearest for each query rectangle.
// mode server.ModePrune uses the server's default epsilon/delta.
func (c *Client) NearestBatch(ctx context.Context, qs []table.Rect, mode string) ([]NearestItem, error) {
	req := server.BatchRequest{Mode: mode, Items: make([]server.BatchItem, len(qs))}
	for i, q := range qs {
		req.Items[i] = server.BatchItem{Q: server.FormatRect(q)}
	}
	raws, err := c.batch(ctx, "/v1/batch/nearest", &req, len(qs))
	if err != nil {
		return nil, err
	}
	out := make([]NearestItem, len(raws))
	for i, raw := range raws {
		if err := itemError(raw); err != nil {
			out[i].Err = err
			continue
		}
		res := new(server.NearestResult)
		if err := json.Unmarshal(raw, res); err != nil {
			out[i].Err = fmt.Errorf("client: bad item %d: %w", i, err)
			continue
		}
		out[i].Result = res
	}
	return out, nil
}

// AssignBatch queries /v1/batch/assign for each query rectangle.
func (c *Client) AssignBatch(ctx context.Context, qs []table.Rect, mode string) ([]AssignItem, error) {
	req := server.BatchRequest{Mode: mode, Items: make([]server.BatchItem, len(qs))}
	for i, q := range qs {
		req.Items[i] = server.BatchItem{Q: server.FormatRect(q)}
	}
	raws, err := c.batch(ctx, "/v1/batch/assign", &req, len(qs))
	if err != nil {
		return nil, err
	}
	out := make([]AssignItem, len(raws))
	for i, raw := range raws {
		if err := itemError(raw); err != nil {
			out[i].Err = err
			continue
		}
		res := new(server.AssignResult)
		if err := json.Unmarshal(raw, res); err != nil {
			out[i].Err = fmt.Errorf("client: bad item %d: %w", i, err)
			continue
		}
		out[i].Result = res
	}
	return out, nil
}

// batch POSTs one batch request through the retry loop and validates
// the response item count.
func (c *Client) batch(ctx context.Context, path string, req *server.BatchRequest, n int) ([]json.RawMessage, error) {
	if n == 0 {
		return nil, fmt.Errorf("client: empty batch")
	}
	var resp server.BatchResponse
	if err := c.post(ctx, path, req, &resp); err != nil {
		return nil, err
	}
	if len(resp.Items) != n {
		return nil, fmt.Errorf("client: batch answered %d items for %d queries", len(resp.Items), n)
	}
	return resp.Items, nil
}

// itemError reports a per-item server error ({"error": ...}) as an
// error, nil for result payloads.
func itemError(raw json.RawMessage) error {
	var eb struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &eb) == nil && eb.Error != "" {
		return fmt.Errorf("client: server answered item error: %s", eb.Error)
	}
	return nil
}
