// Package series provides Lp sketches over one-dimensional time series —
// the predecessor machinery of Indyk, Koudas & Muthukrishnan (VLDB 2000,
// reference [13]) that the paper generalizes to tables. A pool of dyadic
// window sketches answers "how far apart are these two length-L windows?"
// for arbitrary L in O(k), using the 1D analogue of the paper's compound
// sketches: an arbitrary window is tiled by two overlapping dyadic
// windows from two independent sketch sets.
package series

import (
	"fmt"
	"math/bits"

	"repro/internal/core"
	"repro/internal/table"
)

// compoundSets is the number of independent sketch sets per dyadic
// length; tiling an interval takes two overlapping dyadic intervals.
const compoundSets = 2

// IntervalPool holds precomputed sketches for every position of every
// dyadic window length 2^minLog .. 2^maxLog over a series.
type IntervalPool struct {
	n              int
	p              float64
	k              int
	minLog, maxLog int
	sets           map[int][compoundSets]*core.PlaneSet // keyed by log2(length)
}

// NewIntervalPool builds the pool over x for Lp sketches of size k.
// Window lengths 2^minLog..2^maxLog are precomputed; Sketch then covers
// any window length in [2^minLog, 2^(maxLog+1)].
func NewIntervalPool(x []float64, p float64, k int, seed uint64, minLog, maxLog int) (*IntervalPool, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("series: empty series")
	}
	if minLog < 0 || minLog > maxLog {
		return nil, fmt.Errorf("series: invalid dyadic range [%d, %d]", minLog, maxLog)
	}
	if 1<<maxLog > len(x) {
		return nil, fmt.Errorf("series: max dyadic window %d exceeds series length %d",
			1<<maxLog, len(x))
	}
	// A series is a 1×n table; all the 2D machinery applies with one row.
	tb, err := table.FromData(1, len(x), x)
	if err != nil {
		return nil, err
	}
	pl := &IntervalPool{
		n: len(x), p: p, k: k, minLog: minLog, maxLog: maxLog,
		sets: make(map[int][compoundSets]*core.PlaneSet),
	}
	// All window lengths correlate against the same series, so every
	// plane set shares one frequency-domain plan (one forward FFT of the
	// padded series, total).
	tp := core.NewTablePlan(tb)
	for e := minLog; e <= maxLog; e++ {
		var sets [compoundSets]*core.PlaneSet
		for s := 0; s < compoundSets; s++ {
			skSeed := seed ^ uint64(e)<<32 ^ uint64(s)<<8 ^ 0x1d5e71e5
			sk, err := core.NewSketcher(p, k, 1, 1<<e, skSeed, core.EstimatorAuto)
			if err != nil {
				return nil, err
			}
			sets[s] = sk.AllPositionsPlan(tp)
		}
		pl.sets[e] = sets
	}
	return pl, nil
}

// P returns the Lp exponent.
func (pl *IntervalPool) P() float64 { return pl.p }

// K returns the sketch size.
func (pl *IntervalPool) K() int { return pl.k }

// Len returns the series length.
func (pl *IntervalPool) Len() int { return pl.n }

// dyadicFor returns the log2 of the dyadic length tiling a window of
// length L.
func (pl *IntervalPool) dyadicFor(length int) (int, error) {
	if length < 1<<pl.minLog {
		return 0, fmt.Errorf("series: window %d below smallest pooled length %d",
			length, 1<<pl.minLog)
	}
	e := bits.Len(uint(length)) - 1
	if e > pl.maxLog {
		e = pl.maxLog
	}
	if length > 2<<e {
		return 0, fmt.Errorf("series: window %d exceeds twice the largest pooled length %d",
			length, 1<<pl.maxLog)
	}
	return e, nil
}

// CanSketch reports whether a window is coverable.
func (pl *IntervalPool) CanSketch(start, length int) error {
	if start < 0 || length <= 0 || start+length > pl.n {
		return fmt.Errorf("series: window [%d, %d) outside series of length %d",
			start, start+length, pl.n)
	}
	_, err := pl.dyadicFor(length)
	return err
}

// IsExact reports whether windows of this length hit a pooled dyadic
// length exactly (single-sketch path, full Theorem 1/2 guarantee).
func (pl *IntervalPool) IsExact(length int) bool {
	e, err := pl.dyadicFor(length)
	return err == nil && length == 1<<e
}

// Sketch returns the sketch of the window [start, start+length) in O(k):
// the exact dyadic sketch when length is pooled, otherwise the sum of the
// two overlapping dyadic sketches anchored at the window's ends.
func (pl *IntervalPool) Sketch(start, length int, dst []float64) ([]float64, error) {
	if err := pl.CanSketch(start, length); err != nil {
		return nil, err
	}
	e, _ := pl.dyadicFor(length)
	sets := pl.sets[e]
	if cap(dst) < pl.k {
		dst = make([]float64, pl.k)
	}
	dst = dst[:pl.k]
	if length == 1<<e {
		return sets[0].SketchAt(0, start, dst), nil
	}
	for i := range dst {
		dst[i] = 0
	}
	sets[0].AddSketchAt(0, start, dst)
	sets[1].AddSketchAt(0, start+length-1<<e, dst)
	return dst, nil
}

// Distance estimates the Lp distance between two equal-length windows.
// Exact-dyadic lengths carry the (1±ε) guarantee; others the 2(1+ε)
// compound overcount (each cell covered once or twice).
func (pl *IntervalPool) Distance(aStart, bStart, length int) (float64, error) {
	sa, err := pl.Sketch(aStart, length, nil)
	if err != nil {
		return 0, err
	}
	sb, err := pl.Sketch(bStart, length, nil)
	if err != nil {
		return 0, err
	}
	e, _ := pl.dyadicFor(length)
	sk := pl.sets[e][0].Sketcher()
	return sk.DistanceScratch(sa, sb, make([]float64, pl.k)), nil
}

// NearestWindow scans all window positions (stride apart) and returns the
// start of the window most similar to the query window under the pool's
// sketched distance — the "representative trends" primitive of [13].
// The query window itself (any overlap) is excluded.
func (pl *IntervalPool) NearestWindow(queryStart, length, stride int) (int, float64, error) {
	if stride <= 0 {
		return 0, 0, fmt.Errorf("series: stride %d", stride)
	}
	if err := pl.CanSketch(queryStart, length); err != nil {
		return 0, 0, err
	}
	sq, err := pl.Sketch(queryStart, length, nil)
	if err != nil {
		return 0, 0, err
	}
	e, _ := pl.dyadicFor(length)
	sk := pl.sets[e][0].Sketcher()
	scratch := make([]float64, pl.k)
	buf := make([]float64, pl.k)
	bestStart, bestDist := -1, 0.0
	for s := 0; s+length <= pl.n; s += stride {
		if s < queryStart+length && s+length > queryStart {
			continue // overlaps the query
		}
		if buf, err = pl.Sketch(s, length, buf); err != nil {
			return 0, 0, err
		}
		d := sk.DistanceScratch(sq, buf, scratch)
		if bestStart == -1 || d < bestDist {
			bestStart, bestDist = s, d
		}
	}
	if bestStart == -1 {
		return 0, 0, fmt.Errorf("series: no non-overlapping candidate windows")
	}
	return bestStart, bestDist, nil
}

// BestPair scans all pairs of non-overlapping stride-aligned windows and
// returns the most similar pair under the pool's sketched distance — the
// motif-discovery primitive ("which two periods look alike?"). Cost is
// O(w²·k) for w candidate windows versus O(w²·L) exactly; the sketches
// are read once per window.
func (pl *IntervalPool) BestPair(length, stride int) (aStart, bStart int, dist float64, err error) {
	if stride <= 0 {
		return 0, 0, 0, fmt.Errorf("series: stride %d", stride)
	}
	if err := pl.CanSketch(0, length); err != nil {
		return 0, 0, 0, err
	}
	type window struct {
		start  int
		sketch []float64
	}
	var windows []window
	for s := 0; s+length <= pl.n; s += stride {
		sk, err := pl.Sketch(s, length, nil)
		if err != nil {
			return 0, 0, 0, err
		}
		windows = append(windows, window{start: s, sketch: sk})
	}
	if len(windows) < 2 {
		return 0, 0, 0, fmt.Errorf("series: fewer than two candidate windows")
	}
	e, _ := pl.dyadicFor(length)
	est := pl.sets[e][0].Sketcher()
	scratch := make([]float64, pl.k)
	best := -1.0
	for i := 0; i < len(windows); i++ {
		for j := i + 1; j < len(windows); j++ {
			wi, wj := windows[i], windows[j]
			if wi.start+length > wj.start { // overlap
				continue
			}
			d := est.DistanceScratch(wi.sketch, wj.sketch, scratch)
			if best < 0 || d < best {
				aStart, bStart, best = wi.start, wj.start, d
			}
		}
	}
	if best < 0 {
		return 0, 0, 0, fmt.Errorf("series: no non-overlapping window pairs")
	}
	return aStart, bStart, best, nil
}
