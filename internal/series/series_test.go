package series

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/lpnorm"
)

func randSeries(n int, seed uint64) []float64 {
	rng := rand.New(rand.NewPCG(seed, 1))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64() * 10
	}
	return x
}

func TestNewIntervalPoolValidation(t *testing.T) {
	x := randSeries(64, 1)
	if _, err := NewIntervalPool(nil, 1, 8, 1, 2, 4); err == nil {
		t.Error("empty series: expected error")
	}
	if _, err := NewIntervalPool(x, 1, 8, 1, -1, 4); err == nil {
		t.Error("negative minLog: expected error")
	}
	if _, err := NewIntervalPool(x, 1, 8, 1, 5, 4); err == nil {
		t.Error("min > max: expected error")
	}
	if _, err := NewIntervalPool(x, 1, 8, 1, 2, 7); err == nil {
		t.Error("window > series: expected error")
	}
	if _, err := NewIntervalPool(x, 3, 8, 1, 2, 4); err == nil {
		t.Error("bad p: expected error")
	}
	pl, err := NewIntervalPool(x, 1.5, 8, 1, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pl.P() != 1.5 || pl.K() != 8 || pl.Len() != 64 {
		t.Error("accessors wrong")
	}
}

func TestIntervalPoolCanSketch(t *testing.T) {
	pl, _ := NewIntervalPool(randSeries(64, 2), 1, 8, 1, 2, 4)
	ok := [][2]int{{0, 4}, {10, 16}, {0, 32}, {5, 23}, {32, 32}}
	for _, w := range ok {
		if err := pl.CanSketch(w[0], w[1]); err != nil {
			t.Errorf("CanSketch(%v): %v", w, err)
		}
	}
	bad := [][2]int{{0, 2}, {0, 33}, {-1, 8}, {60, 8}, {0, 0}}
	for _, w := range bad {
		if err := pl.CanSketch(w[0], w[1]); err == nil {
			t.Errorf("CanSketch(%v): expected error", w)
		}
	}
}

func TestIntervalPoolIsExact(t *testing.T) {
	pl, _ := NewIntervalPool(randSeries(64, 3), 1, 8, 1, 2, 4)
	if !pl.IsExact(8) || !pl.IsExact(16) || !pl.IsExact(4) {
		t.Error("dyadic lengths should be exact")
	}
	if pl.IsExact(12) || pl.IsExact(32) || pl.IsExact(3) {
		t.Error("non-pooled lengths should not be exact")
	}
}

func TestIntervalPoolExactWindowAccuracy(t *testing.T) {
	x := randSeries(256, 4)
	const k = 401
	for _, p := range []float64{1, 2} {
		pl, err := NewIntervalPool(x, p, k, 5, 3, 5)
		if err != nil {
			t.Fatal(err)
		}
		lp := lpnorm.MustP(p)
		const length = 32
		a, b := 10, 150
		exact := lp.Dist(x[a:a+length], x[b:b+length])
		est, err := pl.Distance(a, b, length)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(est-exact) / exact; rel > 0.25 {
			t.Errorf("p=%v: exact-window rel err %v (exact %v est %v)", p, rel, exact, est)
		}
	}
}

func TestIntervalPoolCompoundSandwich(t *testing.T) {
	// Non-dyadic windows: estimate within [1-ε, 2(1+ε)] of the true
	// distance (each cell covered once or twice by the two-piece tiling).
	x := randSeries(256, 5)
	pl, err := NewIntervalPool(x, 1, 301, 6, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	lp := lpnorm.MustP(1)
	for _, length := range []int{12, 25, 50} {
		a, b := 3, 170
		exact := lp.Dist(x[a:a+length], x[b:b+length])
		est, err := pl.Distance(a, b, length)
		if err != nil {
			t.Fatal(err)
		}
		if est < 0.6*exact || est > 3.0*exact {
			t.Errorf("length %d: compound estimate %v outside [0.6, 3.0]× exact %v",
				length, est, exact)
		}
	}
}

func TestIntervalPoolCompoundIsSumOfTwo(t *testing.T) {
	x := randSeries(64, 6)
	pl, _ := NewIntervalPool(x, 1, 4, 7, 2, 3)
	s, err := pl.Sketch(5, 11, nil) // dyadic 8: pieces at 5 and 5+11-8=8
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, 4)
	pl.sets[3][0].AddSketchAt(0, 5, want)
	pl.sets[3][1].AddSketchAt(0, 8, want)
	for i := range want {
		if math.Abs(s[i]-want[i]) > 1e-9 {
			t.Fatalf("entry %d: %v vs %v", i, s[i], want[i])
		}
	}
}

func TestIntervalPoolSketchErrors(t *testing.T) {
	pl, _ := NewIntervalPool(randSeries(64, 7), 1, 4, 8, 2, 4)
	if _, err := pl.Sketch(0, 2, nil); err == nil {
		t.Error("too-short window: expected error")
	}
	if _, err := pl.Distance(0, 1, 99); err == nil {
		t.Error("too-long window: expected error")
	}
}

func TestNearestWindowFindsPlantedRepeat(t *testing.T) {
	// A series with a repeated motif: window at 200 repeats the window at
	// 16 (plus small noise); everything else is independent noise.
	rng := rand.New(rand.NewPCG(8, 8))
	x := make([]float64, 256)
	for i := range x {
		x[i] = rng.NormFloat64() * 5
	}
	const length = 16
	for i := 0; i < length; i++ {
		x[200+i] = x[16+i] + rng.NormFloat64()*0.05
	}
	pl, err := NewIntervalPool(x, 2, 301, 9, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	start, d, err := pl.NearestWindow(16, length, 4)
	if err != nil {
		t.Fatal(err)
	}
	if start != 200 {
		t.Errorf("nearest window at %d (dist %v), want 200", start, d)
	}
}

func TestNearestWindowErrors(t *testing.T) {
	pl, _ := NewIntervalPool(randSeries(64, 9), 1, 4, 10, 2, 4)
	if _, _, err := pl.NearestWindow(0, 8, 0); err == nil {
		t.Error("stride 0: expected error")
	}
	if _, _, err := pl.NearestWindow(0, 99, 1); err == nil {
		t.Error("bad window: expected error")
	}
	// A centered query that overlaps every candidate position leaves no
	// non-overlapping windows.
	if _, _, err := pl.NearestWindow(16, 32, 16); err == nil {
		t.Error("expected no-candidates error")
	}
}

func TestBestPairFindsPlantedMotif(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 10))
	x := make([]float64, 256)
	for i := range x {
		x[i] = rng.NormFloat64() * 8
	}
	const length = 16
	// Plant a near-identical motif at 32 and 192.
	for i := 0; i < length; i++ {
		x[192+i] = x[32+i] + rng.NormFloat64()*0.01
	}
	pl, err := NewIntervalPool(x, 2, 301, 11, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, b, d, err := pl.BestPair(length, 16)
	if err != nil {
		t.Fatal(err)
	}
	if a != 32 || b != 192 {
		t.Errorf("BestPair = (%d, %d) dist %v, want (32, 192)", a, b, d)
	}
}

func TestBestPairErrors(t *testing.T) {
	pl, _ := NewIntervalPool(randSeries(64, 12), 1, 4, 13, 2, 4)
	if _, _, _, err := pl.BestPair(8, 0); err == nil {
		t.Error("stride 0: expected error")
	}
	if _, _, _, err := pl.BestPair(99, 1); err == nil {
		t.Error("bad length: expected error")
	}
	if _, _, _, err := pl.BestPair(32, 64); err == nil {
		t.Error("single window: expected error")
	}
}
