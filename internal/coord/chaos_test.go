// Chaos drills: shards fail and recover mid-traffic, and the
// coordinator must never be WRONG without saying so. The invariant
// under test everywhere: a 200 without a partial tag matches the
// unsharded reference, a 200 with one names the missing columns, and
// everything else is a clean 503/504 — there is no fourth outcome.
package coord

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/table"
)

func waitState(t *testing.T, f *fleet, shard int, want State) {
	t.Helper()
	waitStateURL(t, f.coord, f.shards[shard].url(), want)
}

// waitStateURL polls for an endpoint (by URL) to reach the wanted
// state, re-resolving through memberSnapshot each round so it stays
// correct while register/deregister mutates the fleet under it.
func waitStateURL(t *testing.T, c *Coordinator, url string, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var got State
		found := false
		for _, ep := range c.memberSnapshot() {
			if ep.url == url {
				got, found = ep.currentState(), true
				break
			}
		}
		if found && got == want {
			return
		}
		if time.Now().After(deadline) {
			if !found {
				t.Fatalf("endpoint %s not in fleet, want %v", url, want)
			}
			t.Fatalf("endpoint %s stuck in %v, want %v", url, got, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestChaosPartialAnswers(t *testing.T) {
	f := newFleet(t, Config{}, false)
	f.shards[2].down.Store(true) // cols 64..96 gone
	waitState(t, f, 2, StateDead)

	// Nearest for a shard-0 tile: the reachable shards answer, honestly
	// tagged with the columns that are missing from the scan.
	q := tileRect(0)
	path := fmt.Sprintf("/v1/nearest?q=%s&mode=sketch", server.FormatRect(q))
	code, _, body := httpGet(t, f.ts.URL+path)
	if code != 200 {
		t.Fatalf("partial nearest: %d (%s)", code, body)
	}
	var res NearestResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("bad JSON %s: %v", body, err)
	}
	if !res.Partial || !res.Degraded || res.Reason != ReasonPartial ||
		len(res.Missing) != 1 || res.Missing[0] != "64-96" {
		t.Errorf("partial tags: %s", body)
	}
	if res.Tile >= 48 || res.Tile < 0 {
		t.Errorf("merged tile %d out of grid", res.Tile)
	}
	// The merged best over shards 0+1 can only be >= the full argmin.
	var ref server.NearestResult
	_, _, refBody := httpGet(t, f.ref.URL+path)
	if err := json.Unmarshal(refBody, &ref); err != nil {
		t.Fatalf("ref: %v", err)
	}
	if res.Distance < ref.Distance && !closeEnough(res.Distance, ref.Distance) {
		t.Errorf("partial distance %v below full argmin %v", res.Distance, ref.Distance)
	}

	// partial=deny turns the same gap into a clean 503 + Retry-After.
	code, hdr, body := httpGet(t, f.ts.URL+path+"&partial=deny")
	if code != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Errorf("partial=deny: status %d, Retry-After %q (%s)", code, hdr.Get("Retry-After"), body)
	}

	// A query OWNED by the dead shard has no sketch to fan out: always
	// 503, never a guess.
	owned := fmt.Sprintf("/v1/nearest?q=%s&mode=sketch", server.FormatRect(tileRect(8))) // col 64
	code, hdr, body = httpGet(t, f.ts.URL+owned)
	if code != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Errorf("dead owner: status %d (%s)", code, body)
	}

	// Spanning distance: the chunk on the dead shard drops from BOTH
	// rectangles and is named in missing_cols.
	a := table.Rect{R0: 0, C0: 56, Rows: 8, Cols: 16} // spans shards 1|2
	b := table.Rect{R0: 16, C0: 0, Rows: 8, Cols: 16} // inside shard 0
	dpath := fmt.Sprintf("/v1/distance?a=%s&b=%s&mode=sketch",
		server.FormatRect(a), server.FormatRect(b))
	code, _, body = httpGet(t, f.ts.URL+dpath)
	if code != 200 {
		t.Fatalf("partial distance: %d (%s)", code, body)
	}
	var dres DistanceResult
	if err := json.Unmarshal(body, &dres); err != nil {
		t.Fatalf("bad JSON %s: %v", body, err)
	}
	if !dres.Partial || len(dres.Missing) != 1 || dres.Missing[0] != "64-72" {
		t.Errorf("spanning partial tags: %s", body)
	}
	code, _, body = httpGet(t, f.ts.URL+dpath+"&partial=deny")
	if code != http.StatusServiceUnavailable {
		t.Errorf("spanning partial=deny: %d (%s)", code, body)
	}

	// Both rects of a cross-shard pair touching the dead shard leave
	// nothing to compare: 503 even under partial=allow.
	hopeless := fmt.Sprintf("/v1/distance?a=%s&b=%s&mode=sketch",
		server.FormatRect(tileRect(8)), server.FormatRect(tileRect(0)))
	code, _, body = httpGet(t, f.ts.URL+hopeless)
	if code != http.StatusServiceUnavailable {
		t.Errorf("no-comparable-chunk distance: %d (%s)", code, body)
	}
}

// TestChaosNeverUnflaggedWrong hammers the fleet while shards flap: no
// 200 may disagree with the reference unless it carries a partial tag.
func TestChaosNeverUnflaggedWrong(t *testing.T) {
	f := newFleet(t, Config{}, false)

	refs := make([]server.NearestResult, 48)
	for i := range refs {
		_, _, body := httpGet(t, f.ref.URL+fmt.Sprintf("/v1/nearest?q=%s&mode=sketch",
			server.FormatRect(tileRect(i))))
		if err := json.Unmarshal(body, &refs[i]); err != nil {
			t.Fatalf("ref %d: %v", i, err)
		}
	}

	var served, partials, unavailable int
	check := func(i int) {
		t.Helper()
		idx := i % 48
		code, _, body := httpGet(t, f.ts.URL+fmt.Sprintf("/v1/nearest?q=%s&mode=sketch",
			server.FormatRect(tileRect(idx))))
		switch code {
		case 200:
			var res NearestResult
			if err := json.Unmarshal(body, &res); err != nil {
				t.Fatalf("query %d: bad JSON %s", i, body)
			}
			if res.Partial {
				partials++
				if len(res.Missing) == 0 {
					t.Errorf("query %d: partial without missing_cols: %s", i, body)
				}
				return
			}
			served++
			ref := refs[idx]
			if res.Tile != ref.Tile || res.Rect != ref.Rect || !closeEnough(res.Distance, ref.Distance) {
				t.Errorf("query %d: UNFLAGGED WRONG answer\n  ref   %+v\n  coord %s", i, ref, body)
			}
		case http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			unavailable++
		default:
			t.Errorf("query %d: unexpected status %d (%s)", i, code, body)
		}
	}

	allHealthy := func() {
		t.Helper()
		for s := range f.shards {
			f.shards[s].down.Store(false)
		}
		for s := range f.shards {
			waitState(t, f, s, StateHealthy)
		}
	}

	// Phase 1: healthy fleet, every answer clean and reference-equal.
	i := 0
	for ; i < 16; i++ {
		check(i)
	}
	cleanBaseline := served
	// Phase 2: kill shard 1 mid-stream and hammer straight through the
	// ejection window — pre-ejection passive failures and post-ejection
	// routing both land here.
	f.shards[1].down.Store(true)
	for ; i < 40; i++ {
		check(i)
	}
	// Phase 3: revive, wait for probation re-admission, back to clean.
	allHealthy()
	for ; i < 56; i++ {
		check(i)
	}
	// Phase 4: flap a different shard without waiting for ejection.
	f.shards[2].down.Store(true)
	for ; i < 72; i++ {
		if i == 64 {
			f.shards[2].down.Store(false)
			f.shards[0].down.Store(true)
		}
		check(i)
	}
	allHealthy()
	for ; i < 88; i++ {
		check(i)
	}

	t.Logf("served=%d partial=%d unavailable=%d", served, partials, unavailable)
	if cleanBaseline != 16 {
		t.Errorf("healthy phase served %d/16 clean", cleanBaseline)
	}
	if served < 32 {
		t.Errorf("only %d clean serves across healthy phases", served)
	}
}

// TestChaosRecovery: a dead shard that comes back re-enters through
// probation and the fleet converges back to clean, full answers.
func TestChaosRecovery(t *testing.T) {
	f := newFleet(t, Config{}, false)
	q := tileRect(4) // col 32: owned by shard 1
	path := fmt.Sprintf("/v1/nearest?q=%s&mode=sketch", server.FormatRect(q))

	f.shards[1].down.Store(true)
	waitState(t, f, 1, StateDead)
	if f.coord.Ready() {
		t.Error("Ready() with a dead range")
	}
	if code, _, body := httpGet(t, f.ts.URL+path); code != http.StatusServiceUnavailable {
		t.Errorf("dead owner answered %d (%s)", code, body)
	}

	f.shards[1].down.Store(false)
	waitState(t, f, 1, StateProbation)
	waitState(t, f, 1, StateHealthy)
	if !f.coord.Ready() {
		t.Error("Ready() false after recovery")
	}

	code, _, body := httpGet(t, f.ts.URL+path)
	if code != 200 {
		t.Fatalf("post-recovery: %d (%s)", code, body)
	}
	var res NearestResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("bad JSON %s: %v", body, err)
	}
	if res.Partial {
		t.Errorf("post-recovery answer still partial: %s", body)
	}
	var ref server.NearestResult
	_, _, refBody := httpGet(t, f.ref.URL+path)
	if err := json.Unmarshal(refBody, &ref); err != nil {
		t.Fatalf("ref: %v", err)
	}
	if res.Tile != ref.Tile || !closeEnough(res.Distance, ref.Distance) {
		t.Errorf("post-recovery mismatch: ref %+v, coord %s", ref, body)
	}
}

// TestReplicaFailover: with shard 0 served by two endpoints, killing
// one keeps answers clean — replica groups absorb single failures
// without so much as a partial tag.
func TestReplicaFailover(t *testing.T) {
	f := newFleet(t, Config{}, true)
	// shards[0] and shards[1] both serve cols 0..32.
	f.shards[0].down.Store(true)
	waitState(t, f, 0, StateDead)
	if !f.coord.Ready() {
		t.Error("Ready() false with a surviving replica")
	}

	path := fmt.Sprintf("/v1/nearest?q=%s&mode=sketch", server.FormatRect(tileRect(0)))
	for i := 0; i < 4; i++ {
		code, _, body := httpGet(t, f.ts.URL+path)
		if code != 200 {
			t.Fatalf("replica failover: %d (%s)", code, body)
		}
		var res NearestResult
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatalf("bad JSON %s: %v", body, err)
		}
		if res.Partial {
			t.Errorf("replica failover answered partial: %s", body)
		}
	}
}
