package coord

import (
	"repro/internal/server"
)

// Coordinator wire contract. Each result type EMBEDS the corresponding
// single-server result, so the embedded fields inline into the JSON
// object in the same order, and the coordinator-only extras all carry
// omitempty. Consequence: on an all-healthy fleet the coordinator's
// answer carries exactly the fields, indices, tiers and tags the
// single-process server would produce for the same query, with
// distances equal up to each shard's FFT accumulation order (~1e-12
// relative) — the merge-fidelity property the chaos suite asserts —
// while a degraded fleet's answers grow honest partial tags instead of
// silently narrowing their meaning.

// Reasons the coordinator adds to the server's requested/load/deadline.
const (
	// ReasonCrossShard tags a sketch-tier answer to a mode=auto query
	// whose operands live on different shards: the exact tier would need
	// raw rows from two processes, so the sketch tier is not a
	// degradation but the only distributed path. Degraded stays false —
	// re-asking later cannot yield an exact answer.
	ReasonCrossShard = "cross_shard"
	// ReasonPartial tags an answer computed without one or more
	// unreachable shards (partial=allow). Degraded is true: re-asking
	// after the fleet recovers may change the answer.
	ReasonPartial = "partial"
)

// DistanceResult answers the coordinator's /v1/distance.
type DistanceResult struct {
	server.DistanceResult
	// Partial is set when unreachable shards were excluded; Missing
	// lists the global column ranges ("lo-hi", half-open) that could not
	// be consulted.
	Partial bool     `json:"partial,omitempty"`
	Missing []string `json:"missing_cols,omitempty"`
}

// NearestResult answers the coordinator's /v1/nearest. Tile and Rect
// are GLOBAL: the shard-local best indices are translated through the
// shard map before merging, so a client sees exactly the index an
// unsharded server over the whole table would report.
type NearestResult struct {
	server.NearestResult
	Partial bool     `json:"partial,omitempty"`
	Missing []string `json:"missing_cols,omitempty"`
}

// AssignResult answers the coordinator's /v1/assign. Clusterings are
// shard-local (each shard clusters its own tiles), so Cluster is a
// local id qualified by Shard (the index of the owning shard range,
// omitted when 0) and Medoid is the GLOBAL tile index of that cluster's
// medoid.
type AssignResult struct {
	server.AssignResult
	Shard   int      `json:"shard,omitempty"`
	Partial bool     `json:"partial,omitempty"`
	Missing []string `json:"missing_cols,omitempty"`
}
