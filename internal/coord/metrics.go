package coord

import "expvar"

// Process-global coordinator counters on /debug/vars, following the
// tabmine_* naming of internal/server. The per-shard maps are keyed by
// endpoint base URL, so one glance at /debug/vars shows which shard is
// absorbing hedges or striking out.
var (
	mRequests    = expvar.NewInt("tabmine_coord_requests_total")
	mServed      = expvar.NewInt("tabmine_coord_requests_served")
	mUnavailable = expvar.NewInt("tabmine_coord_requests_unavailable") // 503s
	mPartial     = expvar.NewInt("tabmine_coord_partial_answers")

	mShardRequests = expvar.NewMap("tabmine_coord_shard_requests")
	mShardFailures = expvar.NewMap("tabmine_coord_shard_failures")

	mEjections  = expvar.NewInt("tabmine_coord_ejections")
	mReadmits   = expvar.NewInt("tabmine_coord_readmissions")
	mHedges     = expvar.NewInt("tabmine_coord_hedges")
	mHedgeWins  = expvar.NewInt("tabmine_coord_hedge_wins")
	mMapReloads = expvar.NewInt("tabmine_coord_shardmap_reloads")

	// Membership observability: the current shard-map epoch, fleet
	// composition by health state, and how often the fleet was edited.
	mEpoch         = expvar.NewInt("tabmine_coord_epoch")
	mRegisters     = expvar.NewInt("tabmine_coord_registers")
	mDeregisters   = expvar.NewInt("tabmine_coord_deregisters")
	mIngestProxied = expvar.NewInt("tabmine_coord_ingest_proxied")

	mEndpoints = expvar.NewMap("tabmine_coord_endpoints")
	gHealthy   = new(expvar.Int)
	gProbation = new(expvar.Int)
	gDead      = new(expvar.Int)
)

func init() {
	mEndpoints.Set("healthy", gHealthy)
	mEndpoints.Set("probation", gProbation)
	mEndpoints.Set("dead", gDead)
}

// Stats is a point-in-time read of the coordinator counters.
type Stats struct {
	Requests    int64 // queries received
	Served      int64 // 2xx answers (partial included)
	Unavailable int64 // 503s (no live endpoints / denied partials)
	Partial     int64 // partial-tagged 2xx answers

	Ejections    int64 // healthy/probation -> dead transitions
	Readmissions int64 // dead -> probation transitions
	Hedges       int64 // hedged sub-queries fired
	HedgeWins    int64 // hedges that produced the winning answer
	MapReloads   int64 // shard-map rebuilds that changed the map

	Epoch         int64 // current shard-map epoch
	Registers     int64 // runtime endpoint registrations
	Deregisters   int64 // runtime endpoint deregistrations
	IngestProxied int64 // ingest requests proxied to the owning shard

	EndpointsHealthy   int64
	EndpointsProbation int64
	EndpointsDead      int64
}

// ReadStats samples the process-global counters.
func ReadStats() Stats {
	return Stats{
		Requests:    mRequests.Value(),
		Served:      mServed.Value(),
		Unavailable: mUnavailable.Value(),
		Partial:     mPartial.Value(),

		Ejections:    mEjections.Value(),
		Readmissions: mReadmits.Value(),
		Hedges:       mHedges.Value(),
		HedgeWins:    mHedgeWins.Value(),
		MapReloads:   mMapReloads.Value(),

		Epoch:         mEpoch.Value(),
		Registers:     mRegisters.Value(),
		Deregisters:   mDeregisters.Value(),
		IngestProxied: mIngestProxied.Value(),

		EndpointsHealthy:   gHealthy.Value(),
		EndpointsProbation: gProbation.Value(),
		EndpointsDead:      gDead.Value(),
	}
}
