package coord

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/client"
	"repro/internal/server"
)

// HTTP surface: the same /v1/* routes as a single server, so clients
// (and tabmine-replay) point at a coordinator without changes. New
// query parameter: partial=allow|deny overrides the fleet default for
// one request.

// epochHeader carries the shard-map epoch on every coordinator answer
// (success or error). It is a header, not a body field, on purpose:
// answer bodies must stay deterministic functions of (snapshot, query)
// — a co-resident exact distance through the coordinator is
// byte-identical to the shard's own answer — and the epoch is a
// property of the fleet, not of the data.
const epochHeader = "X-Tabmine-Epoch"

func (c *Coordinator) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", c.handleHealthz)
	mux.HandleFunc("/readyz", c.handleReadyz)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/v1/distance", c.wrap(c.itemDistance))
	mux.HandleFunc("/v1/nearest", c.wrap(c.itemNearest))
	mux.HandleFunc("/v1/assign", c.wrap(c.itemAssign))
	mux.HandleFunc("/v1/batch/distance", c.handleBatch(c.itemDistance))
	mux.HandleFunc("/v1/batch/nearest", c.handleBatch(c.itemNearest))
	mux.HandleFunc("/v1/batch/assign", c.handleBatch(c.itemAssign))
	mux.HandleFunc("/v1/ingest", c.handleIngest)
	mux.HandleFunc("/admin/register", c.handleAdminRegister)
	mux.HandleFunc("/admin/deregister", c.handleAdminDeregister)
	c.mux = mux
	c.hs = &http.Server{Handler: mux}
}

// itemFunc answers one query item (single or batch member) against a
// consistent shard map.
type itemFunc func(ctx context.Context, m *shardMap, it server.BatchItem, mode string, allowPartial bool) (any, error)

func (c *Coordinator) itemDistance(ctx context.Context, m *shardMap, it server.BatchItem, mode string, allowPartial bool) (any, error) {
	a, err := server.ParseRect(it.A)
	if err != nil {
		return nil, err
	}
	b, err := server.ParseRect(it.B)
	if err != nil {
		return nil, err
	}
	return c.opDistance(ctx, m, a, b, mode, allowPartial)
}

func (c *Coordinator) itemNearest(ctx context.Context, m *shardMap, it server.BatchItem, mode string, allowPartial bool) (any, error) {
	q, err := server.ParseRect(it.Q)
	if err != nil {
		return nil, err
	}
	return c.opNearest(ctx, m, q, mode, allowPartial)
}

func (c *Coordinator) itemAssign(ctx context.Context, m *shardMap, it server.BatchItem, mode string, allowPartial bool) (any, error) {
	q, err := server.ParseRect(it.Q)
	if err != nil {
		return nil, err
	}
	return c.opAssign(ctx, m, q, mode, allowPartial)
}

// parseMode validates the mode parameter. mode=prune is shard-local
// state (per-shard checkpoint plans over per-shard tile sets) and is
// rejected here rather than half-answered.
func parseMode(vals url.Values) (string, error) {
	mode := vals.Get("mode")
	if mode == "" {
		mode = server.ModeAuto
	}
	switch mode {
	case server.ModeAuto, server.ModeExact, server.ModeSketch:
		return mode, nil
	case server.ModePrune:
		return "", fmt.Errorf("mode=prune is shard-local; query a shard directly")
	}
	return "", fmt.Errorf("bad mode %q", mode)
}

// parsePartial resolves the per-request partial knob against the
// configured default.
func (c *Coordinator) parsePartial(vals url.Values) (allow bool, err error) {
	switch vals.Get("partial") {
	case "":
		return !c.cfg.PartialDeny, nil
	case "allow":
		return true, nil
	case "deny":
		return false, nil
	}
	return false, fmt.Errorf("bad partial %q (want allow or deny)", vals.Get("partial"))
}

func (c *Coordinator) requestTimeout(vals url.Values) (time.Duration, error) {
	timeout := c.cfg.DefaultTimeout
	if tms := vals.Get("timeout_ms"); tms != "" {
		v, err := strconv.Atoi(tms)
		if err != nil || v <= 0 {
			return 0, fmt.Errorf("bad timeout_ms %q", tms)
		}
		timeout = min(time.Duration(v)*time.Millisecond, c.cfg.MaxTimeout)
	}
	return timeout, nil
}

func (c *Coordinator) wrap(fn itemFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		mRequests.Add(1)
		m := c.currentMap()
		if m == nil {
			c.writeUnavailable(w, "no shard has reported yet, retry later")
			return
		}
		w.Header().Set(epochHeader, strconv.FormatInt(m.epoch, 10))
		vals := r.URL.Query()
		mode, err := parseMode(vals)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		allowPartial, err := c.parsePartial(vals)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		timeout, err := c.requestTimeout(vals)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		res, err := fn(ctx, m, server.BatchItem{
			A: vals.Get("a"), B: vals.Get("b"), Q: vals.Get("q"),
		}, mode, allowPartial)
		if err != nil {
			c.writeQueryError(w, err)
			return
		}
		mServed.Add(1)
		if isPartial(res) {
			mPartial.Add(1)
		}
		writeJSON(w, http.StatusOK, res)
	}
}

func isPartial(res any) bool {
	switch r := res.(type) {
	case *DistanceResult:
		return r.Partial
	case *NearestResult:
		return r.Partial
	case *AssignResult:
		return r.Partial
	}
	return false
}

func isDegraded(res any) bool {
	switch r := res.(type) {
	case *DistanceResult:
		return r.Degraded
	case *NearestResult:
		return r.Degraded
	case *AssignResult:
		return r.Degraded
	}
	return false
}

// writeQueryError maps merge-layer errors onto the wire: fleet
// unavailability is 503 + Retry-After (retry can succeed), shard 4xx
// answers pass through with their original status, deadline expiry is
// 504, anything else is the caller's 400.
func (c *Coordinator) writeQueryError(w http.ResponseWriter, err error) {
	var unav *errUnavailable
	var noEp *errNoEndpoints
	var nf *errNotFound
	var se *client.StatusError
	switch {
	case errors.As(err, &unav), errors.As(err, &noEp):
		c.writeUnavailable(w, err.Error())
	case errors.As(err, &nf):
		writeError(w, http.StatusNotFound, nf.msg)
	case errors.As(err, &se):
		writeError(w, se.Code, se.Msg)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeError(w, http.StatusGatewayTimeout, "deadline expired mid-merge")
	default:
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

func (c *Coordinator) writeUnavailable(w http.ResponseWriter, msg string) {
	mUnavailable.Add(1)
	secs := int((c.cfg.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, http.StatusServiceUnavailable, msg)
}

// maxBatchBody mirrors the server's batch body bound.
const maxBatchBody = 8 << 20

// handleBatch answers POST /v1/batch/*: the same wire contract as the
// server's batch endpoints — items answer independently, one bad item
// never fails its batch — with each item running the full
// scatter-gather merge. Items run sequentially: each already fans out
// over every shard, so batch-level parallelism would multiply fleet
// load without improving tail latency.
func (c *Coordinator) handleBatch(fn itemFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		mRequests.Add(1)
		m := c.currentMap()
		if m == nil {
			c.writeUnavailable(w, "no shard has reported yet, retry later")
			return
		}
		w.Header().Set(epochHeader, strconv.FormatInt(m.epoch, 10))
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, "batch endpoints accept POST only")
			return
		}
		var req server.BatchRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody))
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad batch body: %v", err))
			return
		}
		if len(req.Items) == 0 {
			writeError(w, http.StatusBadRequest, "empty batch")
			return
		}
		vals := r.URL.Query()
		if req.Mode != "" {
			vals.Set("mode", req.Mode)
		}
		mode, err := parseMode(vals)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		allowPartial, err := c.parsePartial(vals)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		timeout := c.cfg.DefaultTimeout
		if req.TimeoutMS < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad timeout_ms %d", req.TimeoutMS))
			return
		}
		if req.TimeoutMS > 0 {
			timeout = min(time.Duration(req.TimeoutMS)*time.Millisecond, c.cfg.MaxTimeout)
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()

		resp := &server.BatchResponse{Items: make([]json.RawMessage, len(req.Items))}
		for i, it := range req.Items {
			res, err := fn(ctx, m, it, mode, allowPartial)
			if err != nil {
				msg := err.Error()
				if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
					msg = "deadline expired mid-merge"
				}
				data, _ := json.Marshal(struct {
					Error string `json:"error"`
				}{Error: msg})
				resp.Items[i] = data
				resp.Failed++
				continue
			}
			data, merr := json.Marshal(res)
			if merr != nil {
				data, _ = json.Marshal(struct {
					Error string `json:"error"`
				}{Error: merr.Error()})
				resp.Items[i] = data
				resp.Failed++
				continue
			}
			resp.Items[i] = data
			resp.Served++
			mServed.Add(1)
			if isDegraded(res) {
				resp.Degraded++
			}
			if isPartial(res) {
				mPartial.Add(1)
			}
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

// handleHealthz reports the GLOBAL geometry — the whole table's
// dimensions and tile grid — so load generators aimed at a coordinator
// synthesize queries over the full column space exactly as they would
// against an unsharded server.
func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	m := c.currentMap()
	if m == nil {
		writeJSON(w, http.StatusOK, &server.Health{Status: "booting"})
		return
	}
	w.Header().Set(epochHeader, strconv.FormatInt(m.epoch, 10))
	status := "ok"
	if !c.Ready() {
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, &server.Health{
		Status: status, Rows: m.rows, Cols: m.cols,
		Tiles: m.gridRows() * m.gridCols(), Clusters: m.clusters,
		TileRows: m.tileRows, TileCols: m.tileCols,
		Reloads: mMapReloads.Value(),
		Epoch:   m.epoch,
	})
}

// handleReadyz gates routing: 200 only when the shard map covers the
// whole table and every range has a live endpoint.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	epoch := c.epoch.Load()
	w.Header().Set(epochHeader, strconv.FormatInt(epoch, 10))
	if !c.Ready() {
		secs := int((c.cfg.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeJSON(w, http.StatusServiceUnavailable, &server.Ready{Status: "booting", Epoch: epoch})
		return
	}
	writeJSON(w, http.StatusOK, &server.Ready{Status: "ready", Epoch: epoch})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}

func writeError(w http.ResponseWriter, code int, msg string) {
	data, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{Error: msg})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}
