package coord

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/server"
	"repro/internal/table"
)

// Merge layer: how per-shard answers combine into one global answer.
//
// The load-bearing fact is that pool sketch randomness depends only on
// (dyadic size, independent-set index, lane) — never on table position
// — so shards built with equal (p, k, seed, estimator) produce
// sketches that are mutually comparable and mathematically identical
// to what an unsharded pool over the whole table would produce for the
// same cells. "Mathematically" rather than "bitwise": each shard runs
// its own FFT build over its own column slice, so the same dot product
// is accumulated in a different order and the values agree only to
// float rounding (~1e-12 relative). Distance and nearest merges below
// therefore reproduce the single-process sketch tier's indices,
// tie-breaks, and tags exactly (an argmin flip would need two distinct
// candidates within accumulation noise), with distances equal up to
// that rounding; the fleet test suite asserts exactly this contract.

// errUnavailable maps to 503 + Retry-After: the fleet cannot answer
// right now, but retrying later may succeed.
type errUnavailable struct{ msg string }

func (e *errUnavailable) Error() string { return e.msg }

func unavailablef(format string, args ...any) error {
	return &errUnavailable{msg: fmt.Sprintf(format, args...)}
}

// errNotFound maps to 404 (assign without clustering).
type errNotFound struct{ msg string }

func (e *errNotFound) Error() string { return e.msg }

// queryErr classifies a sub-query failure: a shard's 4xx is a query
// error (same answer everywhere — propagate it), anything else is the
// fleet's problem (endpoint fault or no live endpoint — a candidate
// for a partial answer or a 503).
func queryErr(err error) error {
	var se *client.StatusError
	if errors.As(err, &se) && se.Code < 500 && se.Code != 429 {
		return se
	}
	return nil
}

// localRect translates a global rectangle into rng's local coordinates.
func localRect(rng *shardRange, r table.Rect) table.Rect {
	return table.Rect{R0: r.R0, C0: r.C0 - rng.baseCol, Rows: r.Rows, Cols: r.Cols}
}

// colRange renders a global half-open column span for Missing tags.
func colRange(c0, c1 int) string { return fmt.Sprintf("%d-%d", c0, c1) }

// staleBase flags a shard that answered for a different column
// placement than the map expects — a replacement process reusing an
// address, or a window trim the prober has not observed yet. The
// answer is fenced, never merged (merging sketches from the wrong
// columns is exactly the unflagged-wrong failure the epoch fence
// exists to prevent); as a non-StatusError it counts as an endpoint
// fault, so subQuery strikes the endpoint and fails over.
func staleBase(epURL string, got int, rng *shardRange) error {
	return fmt.Errorf("shard %s answered for base_col %d but the map places it at %d (stale placement fenced)",
		epURL, got, rng.baseCol)
}

// missingSpans collects the global column spans a merged answer did not
// consult: ranges with no reachable endpoint plus map gaps (columns no
// registered shard covers at all — a deregistered sole owner). Sorted
// by span start so tags are stable.
func missingSpans(m *shardMap, missingIdx []int) []string {
	spans := make([][2]int, 0, len(missingIdx)+len(m.gaps))
	for _, i := range missingIdx {
		rng := m.ranges[i]
		spans = append(spans, [2]int{rng.baseCol, rng.baseCol + rng.cols})
	}
	spans = append(spans, m.gaps...)
	sort.Slice(spans, func(i, j int) bool { return spans[i][0] < spans[j][0] })
	out := make([]string, 0, len(spans))
	for _, s := range spans {
		out = append(out, colRange(s[0], s[1]))
	}
	return out
}

// --- distance ---

func (c *Coordinator) opDistance(ctx context.Context, m *shardMap, a, b table.Rect, mode string, allowPartial bool) (any, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, fmt.Errorf("distance between different-size rects %v and %v", a, b)
	}
	if err := validGlobalRect(m, a); err != nil {
		return nil, err
	}
	if err := validGlobalRect(m, b); err != nil {
		return nil, err
	}
	ia := m.rangeIdxFor(a.C0, a.C0+a.Cols)
	ib := m.rangeIdxFor(b.C0, b.C0+b.Cols)

	// Co-resident rectangles proxy to their owner verbatim: the shard
	// holds all the data, so every tier — including exact — works, and
	// the answer is the single-process answer by construction.
	if ia >= 0 && ia == ib {
		rng := m.ranges[ia]
		sub, cancel, _ := c.subDeadline(ctx)
		defer cancel()
		res, err := subQuery(c, sub, rng, func(qctx context.Context, ep *endpoint) (*server.DistanceResult, error) {
			return ep.cl.Distance(qctx, localRect(rng, a), localRect(rng, b), mode)
		})
		if err != nil {
			return nil, distErr(err)
		}
		return &DistanceResult{DistanceResult: *res}, nil
	}
	if mode == server.ModeExact {
		if m.inGap(a.C0, a.C0+a.Cols) || m.inGap(b.C0, b.C0+b.Cols) {
			return nil, unavailablef("no shard known for some columns of %v/%v; register a replacement", a, b)
		}
		return nil, fmt.Errorf("mode=exact needs both rectangles on one shard (a on shard %d, b on shard %d); use mode=sketch for cross-shard distances", ia, ib)
	}
	reason := server.ReasonRequested
	if mode == server.ModeAuto {
		reason = ReasonCrossShard
	}
	return c.sketchDistance(ctx, m, a, b, reason, allowPartial)
}

// distErr maps a sub-query failure on a non-partializable path.
func distErr(err error) error {
	if qe := queryErr(err); qe != nil {
		return qe
	}
	return unavailablef("shard unreachable: %v", err)
}

// sketchDistance merges a cross-shard (possibly spanning) distance on
// the sketch tier. Both rectangles are cut at the union of every shard
// boundary either rectangle crosses, so column-chunk i of a and
// column-chunk i of b have equal width and each lands wholly inside
// one shard. Each chunk's two sketches are fetched from their owners;
// the per-chunk sketches are summed lane-wise in ascending chunk order
// (sketches are linear in the data, and fixed order keeps float
// summation deterministic), and the summed vectors are differenced
// under the shared estimator.
//
// For rectangles that each fit one shard this is exactly two sketch
// fetches and reproduces the unsharded answer (up to each shard's FFT
// accumulation order). For
// SPANNING rectangles the sum is an honest estimator only insofar as
// same-width chunks reuse the same random matrices (see DESIGN.md §13
// for the caveat); the primary tile-grid workload never spans.
func (c *Coordinator) sketchDistance(ctx context.Context, m *shardMap, a, b table.Rect, reason string, allowPartial bool) (any, error) {
	cutSet := map[int]bool{}
	addCuts := func(r table.Rect) {
		for _, rng := range m.ranges {
			for _, edge := range [2]int{rng.baseCol, rng.baseCol + rng.cols} {
				if off := edge - r.C0; off > 0 && off < r.Cols {
					cutSet[off] = true
				}
			}
		}
	}
	addCuts(a)
	addCuts(b)
	cuts := make([]int, 0, len(cutSet)+2)
	cuts = append(cuts, 0)
	for off := range cutSet {
		cuts = append(cuts, off)
	}
	sort.Ints(cuts)
	cuts = append(cuts, a.Cols)

	type chunk struct {
		lo, hi   int
		ska, skb []float64
		erra     error
		errb     error
	}
	chunks := make([]chunk, len(cuts)-1)
	sub, cancel, timeout := c.subDeadline(ctx)
	defer cancel()
	var wg sync.WaitGroup
	fetch := func(r table.Rect, dst *[]float64, errDst *error) {
		defer wg.Done()
		i := m.rangeIdxFor(r.C0, r.C0+r.Cols)
		if i < 0 {
			*errDst = unavailablef("no shard known for cols %s", colRange(r.C0, r.C0+r.Cols))
			return
		}
		rng := m.ranges[i]
		res, err := subQuery(c, sub, rng, func(qctx context.Context, ep *endpoint) (*server.SketchResult, error) {
			res, err := ep.cl.Sketch(qctx, localRect(rng, r), timeout)
			if err == nil && res.BaseCol != rng.baseCol {
				return nil, staleBase(ep.url, res.BaseCol, rng)
			}
			return res, err
		})
		if err != nil {
			*errDst = err
			return
		}
		*dst = res.Sketch
	}
	for i := range chunks {
		chunks[i].lo, chunks[i].hi = cuts[i], cuts[i+1]
		ca := table.Rect{R0: a.R0, C0: a.C0 + chunks[i].lo, Rows: a.Rows, Cols: chunks[i].hi - chunks[i].lo}
		cb := table.Rect{R0: b.R0, C0: b.C0 + chunks[i].lo, Rows: b.Rows, Cols: chunks[i].hi - chunks[i].lo}
		wg.Add(2)
		go fetch(ca, &chunks[i].ska, &chunks[i].erra)
		go fetch(cb, &chunks[i].skb, &chunks[i].errb)
	}
	wg.Wait()

	sumA, sumB := make([]float64, m.k), make([]float64, m.k)
	var missing []string
	got := 0
	for i := range chunks {
		ch := &chunks[i]
		for _, err := range []error{ch.erra, ch.errb} {
			if err == nil {
				continue
			}
			if qe := queryErr(err); qe != nil {
				return nil, qe
			}
		}
		if ch.erra != nil || ch.errb != nil {
			// Drop the chunk from BOTH rectangles: the remaining sums
			// compare the same column projection of a and b, an honest
			// (if narrower) distance, instead of comparing mismatched
			// supports.
			if ch.erra != nil {
				missing = append(missing, colRange(a.C0+ch.lo, a.C0+ch.hi))
			}
			if ch.errb != nil {
				missing = append(missing, colRange(b.C0+ch.lo, b.C0+ch.hi))
			}
			continue
		}
		got++
		for l := range sumA {
			sumA[l] += ch.ska[l]
			sumB[l] += ch.skb[l]
		}
	}
	if len(missing) > 0 && !allowPartial {
		return nil, unavailablef("shards for cols %v unreachable and partial=deny", missing)
	}
	if got == 0 {
		return nil, unavailablef("no shard reachable for any column of %v/%v", a, b)
	}
	res := &DistanceResult{DistanceResult: server.DistanceResult{
		Distance: m.sdist(sumA, sumB), Tier: server.TierSketch, Reason: reason,
	}}
	if len(missing) > 0 {
		sort.Strings(missing)
		res.Partial = true
		res.Missing = dedup(missing)
		res.Degraded = true
		res.Reason = ReasonPartial
	}
	return res, nil
}

func dedup(ss []string) []string {
	out := ss[:0]
	for i, s := range ss {
		if i == 0 || s != ss[i-1] {
			out = append(out, s)
		}
	}
	return out
}

func validGlobalRect(m *shardMap, r table.Rect) error {
	if !r.In(m.rows, m.cols) {
		return fmt.Errorf("rect %v outside table %dx%d", r, m.rows, m.cols)
	}
	return nil
}

// --- nearest / assign ---

// globalTile translates rng's local tile index into the global grid.
// Within a column-banded shard, local row-major order restricted to
// the shard equals global row-major order restricted to the shard, so
// per-shard lowest-local-index tie-breaks translate into per-shard
// lowest-GLOBAL-index minimizers — which is what makes the merge's
// (distance, global index) ordering reproduce the unsharded argmin.
func (m *shardMap) globalTile(rng *shardRange, local int) int {
	localGridCols := rng.cols / m.tileCols
	r, cl := local/localGridCols, local%localGridCols
	return r*m.gridCols() + rng.baseCol/m.tileCols + cl
}

// globalTileRect is the tile rectangle of a global tile index, equal to
// what the unsharded grid would report.
func (m *shardMap) globalTileRect(idx int) table.Rect {
	r, cg := idx/m.gridCols(), idx%m.gridCols()
	return table.Rect{R0: r * m.tileRows, C0: cg * m.tileCols, Rows: m.tileRows, Cols: m.tileCols}
}

// querySketch fetches q's sketch from its owner shard. The owner is
// required: without q's sketch there is nothing to compare, so owner
// unavailability is always a 503, never a partial answer.
func (c *Coordinator) querySketch(ctx context.Context, m *shardMap, q table.Rect, timeout time.Duration) (*shardRange, []float64, error) {
	i := m.rangeIdxFor(q.C0, q.C0+q.Cols)
	if i < 0 {
		if m.inGap(q.C0, q.C0+q.Cols) {
			return nil, nil, unavailablef("no shard known for cols %s; register a replacement",
				colRange(q.C0, q.C0+q.Cols))
		}
		return nil, nil, fmt.Errorf("query rect %v spans a shard boundary", q)
	}
	rng := m.ranges[i]
	res, err := subQuery(c, ctx, rng, func(qctx context.Context, ep *endpoint) (*server.SketchResult, error) {
		res, err := ep.cl.Sketch(qctx, localRect(rng, q), timeout)
		if err == nil && res.BaseCol != rng.baseCol {
			return nil, staleBase(ep.url, res.BaseCol, rng)
		}
		return res, err
	})
	if err != nil {
		if qe := queryErr(err); qe != nil {
			return nil, nil, qe
		}
		return nil, nil, unavailablef("query owner shard (%s) unreachable: %v", rng, err)
	}
	return rng, res.Sketch, nil
}

func (c *Coordinator) checkTileSized(m *shardMap, q table.Rect) error {
	if err := validGlobalRect(m, q); err != nil {
		return err
	}
	if q.Rows != m.tileRows || q.Cols != m.tileCols {
		return fmt.Errorf("query rect %v must match the %dx%d tile size", q, m.tileRows, m.tileCols)
	}
	return nil
}

// shardBest is one shard's best candidate, already in global terms.
type shardBest struct {
	rngIdx  int
	tile    int // global tile index (nearest: best tile; assign: medoid)
	cluster int // assign only: shard-local cluster id
	dist    float64
	ok      bool
	err     error
}

// fanBest posts q's sketch to every shard range and collects bests.
func (c *Coordinator) fanBest(ctx context.Context, m *shardMap, owner *shardRange, qsk []float64, q table.Rect, assign bool, timeout time.Duration) []shardBest {
	bests := make([]shardBest, len(m.ranges))
	var wg sync.WaitGroup
	for i, rng := range m.ranges {
		wg.Add(1)
		go func(i int, rng *shardRange) {
			defer wg.Done()
			req := &server.SketchQueryRequest{Sketch: qsk}
			if rng == owner && !assign {
				req.Exclude = server.FormatRect(localRect(rng, q))
			}
			res, err := subQuery(c, ctx, rng, func(qctx context.Context, ep *endpoint) (*server.SketchBest, error) {
				var res *server.SketchBest
				var err error
				if assign {
					res, err = ep.cl.SketchAssign(qctx, req, timeout)
				} else {
					res, err = ep.cl.SketchNearest(qctx, req, timeout)
				}
				if err == nil && res.BaseCol != rng.baseCol {
					return nil, staleBase(ep.url, res.BaseCol, rng)
				}
				return res, err
			})
			if err != nil {
				bests[i] = shardBest{rngIdx: i, err: err}
				return
			}
			local := res.Tile
			if assign {
				local = res.Medoid
			}
			bests[i] = shardBest{
				rngIdx: i, tile: m.globalTile(rng, local),
				cluster: res.Cluster, dist: res.Distance, ok: true,
			}
		}(i, rng)
	}
	wg.Wait()
	return bests
}

// mergeBests reduces the fan-out: minimum distance, ties to the lowest
// global tile index — the unsharded argmin's ordering.
func mergeBests(bests []shardBest) (best shardBest, missing []int, found bool) {
	for _, b := range bests {
		if !b.ok {
			missing = append(missing, b.rngIdx)
			continue
		}
		if !found || b.dist < best.dist || (b.dist == best.dist && b.tile < best.tile) {
			best, found = b, true
		}
	}
	return best, missing, found
}

func (c *Coordinator) opNearest(ctx context.Context, m *shardMap, q table.Rect, mode string, allowPartial bool) (any, error) {
	if err := c.checkTileSized(m, q); err != nil {
		return nil, err
	}
	if len(m.ranges) == 1 && len(m.gaps) == 0 {
		// Whole table on one shard (possibly replicated): proxy any
		// mode verbatim and translate indices (identity when the shard
		// starts at column 0). With gaps the lone survivor does NOT get
		// this path: its answer would ignore the lost columns without
		// saying so — it must go through the merge and come back tagged.
		rng := m.ranges[0]
		sub, cancel, _ := c.subDeadline(ctx)
		defer cancel()
		res, err := subQuery(c, sub, rng, func(qctx context.Context, ep *endpoint) (*server.NearestResult, error) {
			return ep.cl.Nearest(qctx, localRect(rng, q), mode)
		})
		if err != nil {
			return nil, distErr(err)
		}
		out := *res
		out.Tile = m.globalTile(rng, res.Tile)
		out.Rect = server.FormatRect(m.globalTileRect(out.Tile))
		return &NearestResult{NearestResult: out}, nil
	}
	if mode == server.ModeExact {
		return nil, fmt.Errorf("mode=exact nearest needs the whole tile grid on one shard (%d shards configured); use mode=sketch", len(m.ranges))
	}
	reason := server.ReasonRequested
	if mode == server.ModeAuto {
		reason = ReasonCrossShard
	}
	sub, cancel, timeout := c.subDeadline(ctx)
	defer cancel()
	owner, qsk, err := c.querySketch(sub, m, q, timeout)
	if err != nil {
		return nil, err
	}
	bests := c.fanBest(sub, m, owner, qsk, q, false, timeout)
	for _, b := range bests {
		if b.err != nil {
			if qe := queryErr(b.err); qe != nil {
				return nil, qe
			}
		}
	}
	best, missingIdx, found := mergeBests(bests)
	missing := missingSpans(m, missingIdx)
	if len(missing) > 0 && !allowPartial {
		return nil, unavailablef("cols %v unreachable and partial=deny", missing)
	}
	if !found {
		return nil, unavailablef("no shard reachable for nearest(%v)", q)
	}
	res := &NearestResult{NearestResult: server.NearestResult{
		Tile: best.tile, Rect: server.FormatRect(m.globalTileRect(best.tile)),
		Distance: best.dist, Tier: server.TierSketch, Reason: reason,
	}}
	if len(missing) > 0 {
		res.Partial = true
		res.Missing = missing
		res.Degraded = true
		res.Reason = ReasonPartial
	}
	return res, nil
}

func (c *Coordinator) opAssign(ctx context.Context, m *shardMap, q table.Rect, mode string, allowPartial bool) (any, error) {
	if m.clusters == 0 {
		return nil, &errNotFound{msg: "snapshot built without clustering"}
	}
	if err := c.checkTileSized(m, q); err != nil {
		return nil, err
	}
	if len(m.ranges) == 1 && len(m.gaps) == 0 {
		rng := m.ranges[0]
		sub, cancel, _ := c.subDeadline(ctx)
		defer cancel()
		res, err := subQuery(c, sub, rng, func(qctx context.Context, ep *endpoint) (*server.AssignResult, error) {
			return ep.cl.Assign(qctx, localRect(rng, q), mode)
		})
		if err != nil {
			return nil, distErr(err)
		}
		out := *res
		out.Medoid = m.globalTile(rng, res.Medoid)
		return &AssignResult{AssignResult: out}, nil
	}
	if mode == server.ModeExact {
		return nil, fmt.Errorf("mode=exact assign needs the whole tile grid on one shard (%d shards configured); use mode=sketch", len(m.ranges))
	}
	reason := server.ReasonRequested
	if mode == server.ModeAuto {
		reason = ReasonCrossShard
	}
	sub, cancel, timeout := c.subDeadline(ctx)
	defer cancel()
	owner, qsk, err := c.querySketch(sub, m, q, timeout)
	if err != nil {
		return nil, err
	}
	bests := c.fanBest(sub, m, owner, qsk, q, true, timeout)
	for _, b := range bests {
		if b.err != nil {
			if qe := queryErr(b.err); qe != nil {
				return nil, qe
			}
		}
	}
	best, missingIdx, found := mergeBests(bests)
	missing := missingSpans(m, missingIdx)
	if len(missing) > 0 && !allowPartial {
		return nil, unavailablef("cols %v unreachable and partial=deny", missing)
	}
	if !found {
		return nil, unavailablef("no shard reachable for assign(%v)", q)
	}
	res := &AssignResult{
		AssignResult: server.AssignResult{
			Cluster: best.cluster, Medoid: best.tile, Distance: best.dist,
			Tier: server.TierSketch, Reason: reason,
		},
		Shard: best.rngIdx,
	}
	if len(missing) > 0 {
		res.Partial = true
		res.Missing = missing
		res.Degraded = true
		res.Reason = ReasonPartial
	}
	return res, nil
}
