package coord

import (
	"context"
	"errors"
	"net"
	"net/http"
	"strconv"
)

// Admin surface: fleet membership edits over HTTP, gated to loopback
// peers. The gate is deliberate minimalism — the coordinator binds on
// operator-controlled hosts and the admin verbs are operational, not
// user-facing, so "the caller is on this machine" is the authentication
// model (the same trust boundary as sending the process a signal).

// adminResult is the success body for both admin verbs.
type adminResult struct {
	Status   string `json:"status"`
	Endpoint string `json:"endpoint"`
	Epoch    int64  `json:"epoch"`
	Drained  bool   `json:"drained,omitempty"`
}

// isLoopbackAddr reports whether remoteAddr (host:port) is a loopback
// peer.
func isLoopbackAddr(remoteAddr string) bool {
	host, _, err := net.SplitHostPort(remoteAddr)
	if err != nil {
		host = remoteAddr
	}
	ip := net.ParseIP(host)
	return ip != nil && ip.IsLoopback()
}

// adminGate enforces method and loopback origin for admin handlers.
// Returns false after writing the refusal.
func (c *Coordinator) adminGate(w http.ResponseWriter, r *http.Request) bool {
	if !isLoopbackAddr(r.RemoteAddr) {
		writeError(w, http.StatusForbidden, "admin endpoints accept loopback connections only")
		return false
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return false
	}
	return true
}

// handleAdminRegister adds a shard endpoint to the fleet:
//
//	POST /admin/register
//	endpoint=http://127.0.0.1:7004
//
// The endpoint starts dead and earns traffic through probe/probation;
// the answer's epoch is the map epoch at return time.
func (c *Coordinator) handleAdminRegister(w http.ResponseWriter, r *http.Request) {
	if !c.adminGate(w, r) {
		return
	}
	u := r.FormValue("endpoint")
	if u == "" {
		writeError(w, http.StatusBadRequest, "missing endpoint parameter")
		return
	}
	epoch, err := c.Register(u)
	switch {
	case errors.Is(err, ErrDuplicateEndpoint):
		writeError(w, http.StatusConflict, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	nu, _ := normalizeEndpoint(u)
	writeJSON(w, http.StatusOK, adminResult{Status: "registered", Endpoint: nu, Epoch: epoch})
}

// handleAdminDeregister removes a shard endpoint:
//
//	POST /admin/deregister
//	endpoint=http://127.0.0.1:7001&drain=true
//
// drain defaults to true: the call blocks (bounded by MaxTimeout)
// until the endpoint's in-flight sub-queries finish, so "deregister
// returned 200 with drained=true" means the shard process is safe to
// kill. A drain that times out still leaves the endpoint deregistered
// — the 504 body says so explicitly.
func (c *Coordinator) handleAdminDeregister(w http.ResponseWriter, r *http.Request) {
	if !c.adminGate(w, r) {
		return
	}
	u := r.FormValue("endpoint")
	if u == "" {
		writeError(w, http.StatusBadRequest, "missing endpoint parameter")
		return
	}
	drain := true
	switch r.FormValue("drain") {
	case "", "true":
	case "false":
		drain = false
	default:
		writeError(w, http.StatusBadRequest, "drain must be true or false")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), c.cfg.MaxTimeout)
	defer cancel()
	epoch, err := c.Deregister(ctx, u, drain)
	switch {
	case errors.Is(err, ErrUnknownEndpoint):
		writeError(w, http.StatusNotFound, err.Error())
		return
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeError(w, http.StatusGatewayTimeout,
			"deregistered at epoch "+strconv.FormatInt(epoch, 10)+" but drain incomplete: "+err.Error())
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, adminResult{
		Status: "deregistered", Endpoint: mustNormalize(u), Epoch: epoch, Drained: drain,
	})
}

func mustNormalize(u string) string {
	nu, err := normalizeEndpoint(u)
	if err != nil {
		return u
	}
	return nu
}
