// Tests of the scatter-gather coordinator over a real in-process shard
// fleet: a 32x96 table served as three 32-column shards plus one
// unsharded reference server, all sharing (p, k, seed, estimator) so
// the merge theorem applies and healthy-fleet answers must match the
// single-process sketch tier: identical tiles, rects, tie-breaks, and
// tags, with distances equal up to float accumulation order — each
// shard runs its own FFT build, so the same mathematical dot product
// lands within ~1e-12 relative of the reference, never beyond.
package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/server"
	"repro/internal/table"
	"repro/internal/workload"
)

const (
	fleetRows = 32
	fleetCols = 96
	shardCols = 32
	tileSide  = 8
	fleetK    = 32
	fleetSeed = 5
)

var fleetPoolOpts = core.PoolOptions{
	MinLogRows: 2, MaxLogRows: 3, MinLogCols: 2, MaxLogCols: 3,
}

func buildSnap(t testing.TB, tb *table.Table, baseCol int) *server.Snapshot {
	t.Helper()
	opts := fleetPoolOpts
	opts.BaseCol = baseCol
	pool, err := core.NewPool(tb, 1, fleetK, fleetSeed, opts)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	sn, err := server.BuildSnapshot(context.Background(), tb, pool, server.SnapshotConfig{
		TileRows: tileSide, TileCols: tileSide, Clusters: 3, Seed: fleetSeed,
	})
	if err != nil {
		t.Fatalf("BuildSnapshot: %v", err)
	}
	return sn
}

// shardProc is one shard server plus fault switches: down answers every
// request (probes included) with an injected 503, which is how a
// crashed-but-port-bound or overloaded process looks to the
// coordinator's health machinery; kill severs connections mid-flight
// (the SIGKILL model); gate holds sketch sub-queries open for drain
// tests; h is swappable, modeling an address reused by a process with a
// different column placement.
type shardProc struct {
	ts   *httptest.Server
	snap *server.Snapshot
	h    atomic.Value // http.Handler served behind the fault switches
	down atomic.Bool
	kill atomic.Pointer[faultinject.Breaker]
	gate atomic.Pointer[faultinject.Gate]
}

func (sp *shardProc) url() string { return sp.ts.URL }

type fleet struct {
	tb     *table.Table
	refSn  *server.Snapshot
	ref    *httptest.Server
	shards []*shardProc
	coord  *Coordinator
	ts     *httptest.Server
}

// spawnShard serves sn behind the fault-switch middleware and appends
// the proc to f.shards (it does NOT register the endpoint with the
// coordinator — membership tests do that themselves). scfg configures
// the underlying server; tests inject Ingestors this way.
func (f *fleet) spawnShard(t *testing.T, sn *server.Snapshot, scfg server.Config) *shardProc {
	t.Helper()
	srv, err := server.New(sn, scfg)
	if err != nil {
		t.Fatalf("shard New: %v", err)
	}
	sp := &shardProc{snap: sn}
	sp.h.Store(srv.Handler())
	sp.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if sp.down.Load() {
			http.Error(w, "injected shard failure", http.StatusServiceUnavailable)
			return
		}
		if b := sp.kill.Load(); b != nil && b.Tripped() {
			// A probe round in flight when an endpoint is deregistered
			// may still touch it; probes carry no answers, so only
			// query/ingest paths count as observed hits on the breaker.
			if r.URL.Path != "/readyz" && r.URL.Path != "/v1/shardinfo" {
				b.Hit()
			}
			panic(http.ErrAbortHandler) // severed connection, not a clean error
		}
		if g := sp.gate.Load(); g != nil && strings.HasPrefix(r.URL.Path, "/v1/sketch") {
			g.Wait()
		}
		sp.h.Load().(http.Handler).ServeHTTP(w, r)
	}))
	t.Cleanup(sp.ts.Close)
	f.shards = append(f.shards, sp)
	return sp
}

// newFleet builds the three-shard fixture plus the unsharded reference
// and a coordinator over the shards. replicate0 adds a second endpoint
// serving shard 0's snapshot, forming a replica group.
func newFleet(t *testing.T, cfg Config, replicate0 bool) *fleet {
	return newFleetSrv(t, cfg, replicate0, func(int) server.Config { return server.Config{} })
}

// newFleetSrv is newFleet with per-shard server configuration: scfg(i)
// configures the i-th spawned shard (the replica included).
func newFleetSrv(t *testing.T, cfg Config, replicate0 bool, scfg func(i int) server.Config) *fleet {
	t.Helper()
	f := &fleet{tb: workload.Random(fleetRows, fleetCols, 100, 11)}

	f.refSn = buildSnap(t, f.tb, 0)
	refSrv, err := server.New(f.refSn, server.Config{})
	if err != nil {
		t.Fatalf("reference New: %v", err)
	}
	f.ref = httptest.NewServer(refSrv.Handler())
	t.Cleanup(f.ref.Close)

	var urls []string
	for i := 0; i < fleetCols/shardCols; i++ {
		sub := f.tb.Sub(table.Rect{R0: 0, C0: i * shardCols, Rows: fleetRows, Cols: shardCols})
		sn := buildSnap(t, sub, i*shardCols)
		urls = append(urls, f.spawnShard(t, sn, scfg(len(f.shards))).url())
		if i == 0 && replicate0 {
			urls = append(urls, f.spawnShard(t, sn, scfg(len(f.shards))).url())
		}
	}

	cfg.Endpoints = urls
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 20 * time.Millisecond
	}
	if cfg.ProbeTimeout == 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.HedgeDelay == 0 {
		cfg.HedgeDelay = 20 * time.Millisecond
	}
	f.coord, err = New(cfg)
	if err != nil {
		t.Fatalf("coord.New: %v", err)
	}
	t.Cleanup(f.coord.Close)
	f.ts = httptest.NewServer(f.coord.Handler())
	t.Cleanup(f.ts.Close)
	return f
}

func httpGet(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, resp.Header, body
}

func tileRect(idx int) table.Rect {
	gridCols := fleetCols / tileSide
	return table.Rect{
		R0: (idx / gridCols) * tileSide, C0: (idx % gridCols) * tileSide,
		Rows: tileSide, Cols: tileSide,
	}
}

func TestFleetReady(t *testing.T) {
	f := newFleet(t, Config{}, false)
	if !f.coord.Ready() {
		t.Fatal("coordinator not ready over a healthy fleet")
	}
	code, _, body := httpGet(t, f.ts.URL+"/readyz")
	if code != 200 {
		t.Fatalf("/readyz: %d (%s)", code, body)
	}
	var h server.Health
	code, _, body = httpGet(t, f.ts.URL+"/healthz")
	if code != 200 || json.Unmarshal(body, &h) != nil {
		t.Fatalf("/healthz: %d (%s)", code, body)
	}
	if h.Status != "ok" || h.Rows != fleetRows || h.Cols != fleetCols ||
		h.Tiles != 48 || h.TileRows != tileSide || h.TileCols != tileSide {
		t.Errorf("global geometry: %+v", h)
	}
}

// closeEnough tolerates the per-shard FFT builds' accumulation-order
// noise and nothing else: a wrong merge is off by whole candidates,
// not 1e-12 relative.
func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := a
	if scale < 0 {
		scale = -scale
	}
	return diff <= 1e-9*scale
}

// TestHealthyFleetIdentity is the merge-theorem check over the wire: a
// healthy fleet's sketch-tier answers must match the unsharded
// reference server — identical tiles, rects, and tags, distances equal
// up to float accumulation order — for co-resident AND cross-shard
// tile pairs, and nearest for every tile in the grid.
func TestHealthyFleetIdentity(t *testing.T) {
	f := newFleet(t, Config{}, false)

	compareDistance := func(path string, exactBytes bool) {
		t.Helper()
		wc, _, want := httpGet(t, f.ref.URL+path)
		gc, _, got := httpGet(t, f.ts.URL+path)
		if wc != 200 || gc != 200 {
			t.Fatalf("%s: ref %d coord %d (%s / %s)", path, wc, gc, want, got)
		}
		if exactBytes {
			// The co-resident proxy relays the shard's body verbatim, and
			// the exact tier sums the same cells in the same local order:
			// full byte identity holds.
			if !bytes.Equal(want, got) {
				t.Errorf("%s:\n  ref   %s\n  coord %s", path, want, got)
			}
			return
		}
		var w, g server.DistanceResult
		if json.Unmarshal(want, &w) != nil || json.Unmarshal(got, &g) != nil {
			t.Fatalf("%s: bad JSON (%s / %s)", path, want, got)
		}
		if w.Tier != g.Tier || w.Reason != g.Reason || w.Degraded != g.Degraded ||
			!closeEnough(w.Distance, g.Distance) {
			t.Errorf("%s:\n  ref   %s\n  coord %s", path, want, got)
		}
	}

	// Distance over tile pairs that exercise same-shard and cross-shard
	// routing (tiles 0..11 span all three shards on the first grid row).
	pairs := [][2]int{{0, 1}, {0, 5}, {4, 9}, {8, 11}, {1, 46}, {13, 26}}
	for _, p := range pairs {
		a, b := tileRect(p[0]), tileRect(p[1])
		compareDistance(fmt.Sprintf("/v1/distance?a=%s&b=%s&mode=sketch",
			server.FormatRect(a), server.FormatRect(b)), false)
	}
	// Co-resident pairs proxy verbatim, so even mode=exact matches.
	compareDistance(fmt.Sprintf("/v1/distance?a=%s&b=%s&mode=exact",
		server.FormatRect(tileRect(0)), server.FormatRect(tileRect(13))), true)

	for idx := 0; idx < 48; idx++ {
		path := fmt.Sprintf("/v1/nearest?q=%s&mode=sketch", server.FormatRect(tileRect(idx)))
		wc, _, want := httpGet(t, f.ref.URL+path)
		gc, _, got := httpGet(t, f.ts.URL+path)
		if wc != 200 || gc != 200 {
			t.Fatalf("%s: ref %d coord %d (%s / %s)", path, wc, gc, want, got)
		}
		var w, g server.NearestResult
		if json.Unmarshal(want, &w) != nil || json.Unmarshal(got, &g) != nil {
			t.Fatalf("%s: bad JSON (%s / %s)", path, want, got)
		}
		if w.Tile != g.Tile || w.Rect != g.Rect || w.Tier != g.Tier ||
			w.Reason != g.Reason || w.Degraded != g.Degraded ||
			!closeEnough(w.Distance, g.Distance) {
			t.Errorf("%s:\n  ref   %s\n  coord %s", path, want, got)
		}
	}
}

// TestAssignMerge: clusterings are shard-local, so assign merges to the
// globally nearest medoid across the per-shard clusterings and reports
// the owning shard — checked against a direct scan of the shard
// snapshots.
func TestAssignMerge(t *testing.T) {
	f := newFleet(t, Config{}, false)
	q := tileRect(17) // second grid row, shard 1
	// The coordinator sketches q on its OWNER shard, so the direct scan
	// must use the same sketch bits (the reference pool's sketch of the
	// same cells differs in the last ulps — see the package comment).
	local := table.Rect{R0: q.R0, C0: q.C0 - shardCols, Rows: q.Rows, Cols: q.Cols}
	qsk, err := f.shards[1].snap.Pool().Sketch(local, nil)
	if err != nil {
		t.Fatalf("Sketch: %v", err)
	}
	bestShard, bestCluster, bestD := -1, -1, 0.0
	for i, sp := range f.shards {
		c, _, d, err := sp.snap.SketchAssignVec(context.Background(), qsk)
		if err != nil {
			t.Fatalf("shard %d SketchAssignVec: %v", i, err)
		}
		if bestShard < 0 || d < bestD {
			bestShard, bestCluster, bestD = i, c, d
		}
	}

	var res AssignResult
	code, _, body := httpGet(t, f.ts.URL+fmt.Sprintf("/v1/assign?q=%s&mode=sketch", server.FormatRect(q)))
	if code != 200 || json.Unmarshal(body, &res) != nil {
		t.Fatalf("/v1/assign: %d (%s)", code, body)
	}
	if res.Shard != bestShard || res.Cluster != bestCluster || res.Distance != bestD {
		t.Errorf("assign merge (shard %d, cluster %d, %v) != direct scan (shard %d, cluster %d, %v)",
			res.Shard, res.Cluster, res.Distance, bestShard, bestCluster, bestD)
	}
	if res.Partial {
		t.Errorf("healthy fleet answered partial: %s", body)
	}
}

// TestSpanningDistance: a rectangle crossing a shard boundary answers
// on the sketch tier via chunk-sum merging — deterministically.
func TestSpanningDistance(t *testing.T) {
	f := newFleet(t, Config{}, false)
	a := table.Rect{R0: 0, C0: 24, Rows: 8, Cols: 16}  // spans shards 0|1
	b := table.Rect{R0: 16, C0: 56, Rows: 8, Cols: 16} // spans shards 1|2
	path := fmt.Sprintf("/v1/distance?a=%s&b=%s", server.FormatRect(a), server.FormatRect(b))

	var first DistanceResult
	code, _, body := httpGet(t, f.ts.URL+path)
	if code != 200 || json.Unmarshal(body, &first) != nil {
		t.Fatalf("spanning distance: %d (%s)", code, body)
	}
	if first.Tier != server.TierSketch || first.Reason != ReasonCrossShard || first.Partial {
		t.Errorf("spanning distance tags: %s", body)
	}
	if !(first.Distance > 0) {
		t.Errorf("spanning distance %v not positive", first.Distance)
	}
	_, _, again := httpGet(t, f.ts.URL+path)
	if !bytes.Equal(body, again) {
		t.Errorf("spanning distance not deterministic:\n  %s\n  %s", body, again)
	}
}

func TestCrossShardExactRejected(t *testing.T) {
	f := newFleet(t, Config{}, false)
	checks := []string{
		fmt.Sprintf("/v1/distance?a=%s&b=%s&mode=exact",
			server.FormatRect(tileRect(0)), server.FormatRect(tileRect(5))),
		fmt.Sprintf("/v1/nearest?q=%s&mode=exact", server.FormatRect(tileRect(0))),
		fmt.Sprintf("/v1/nearest?q=%s&mode=prune", server.FormatRect(tileRect(0))),
		fmt.Sprintf("/v1/nearest?q=%s&partial=sometimes", server.FormatRect(tileRect(0))),
		"/v1/distance?a=0,0,8,16&b=0,80,8,16&mode=exact", // spans shards
	}
	for _, path := range checks {
		code, _, body := httpGet(t, f.ts.URL+path)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", path, code, body)
		}
	}
}

// TestStateMachine drives the health transitions directly: ejection
// after EjectAfter consecutive failures, re-admission through probation
// after ReadmitAfter probe successes twice over, and probation's
// one-strike rule.
func TestStateMachine(t *testing.T) {
	cfg := Config{EjectAfter: 3, ReadmitAfter: 2}
	cfg.setDefaults()
	var trans []string
	cfg.OnStateChange = func(_ string, from, to State) {
		trans = append(trans, fmt.Sprintf("%v->%v", from, to))
	}
	c := &Coordinator{cfg: cfg}
	ep := &endpoint{url: "test", state: StateHealthy}

	c.noteFailure(ep, false)
	c.noteFailure(ep, false)
	c.noteProbeOK(ep, false) // success resets the failure streak
	c.noteFailure(ep, false)
	c.noteFailure(ep, false)
	if ep.currentState() != StateHealthy {
		t.Fatalf("ejected before EjectAfter consecutive failures: %v", ep.currentState())
	}
	c.noteFailure(ep, false)
	if ep.currentState() != StateDead {
		t.Fatalf("not ejected after %d consecutive failures: %v", cfg.EjectAfter, ep.currentState())
	}

	c.noteProbeOK(ep, false)
	c.noteFailure(ep, false) // failure resets the ok streak
	c.noteProbeOK(ep, false)
	if ep.currentState() != StateDead {
		t.Fatalf("readmitted too early: %v", ep.currentState())
	}
	c.noteProbeOK(ep, false)
	if ep.currentState() != StateProbation {
		t.Fatalf("not in probation after %d probe successes: %v", cfg.ReadmitAfter, ep.currentState())
	}
	c.noteFailure(ep, false) // probation: one strike
	if ep.currentState() != StateDead {
		t.Fatalf("probation survived a failure: %v", ep.currentState())
	}
	c.noteProbeOK(ep, false)
	c.noteProbeOK(ep, false)
	c.noteProbeOK(ep, false)
	c.noteProbeOK(ep, false)
	if ep.currentState() != StateHealthy {
		t.Fatalf("not healthy after probation cleared: %v", ep.currentState())
	}
	want := []string{"healthy->dead", "dead->probation", "probation->dead", "dead->probation", "probation->healthy"}
	if fmt.Sprint(trans) != fmt.Sprint(want) {
		t.Errorf("transitions %v, want %v", trans, want)
	}
}

// TestRefreshMapValidation: a fleet whose shards disagree on sketch
// parameters or report tile-misaligned placement must never produce a
// merging map.
func TestRefreshMapValidation(t *testing.T) {
	mk := func(base, cols int, seed uint64, tileCols int) *endpoint {
		ep := &endpoint{}
		ep.setInfo(&server.ShardInfo{
			Ready: true, BaseCol: base, Rows: 32, Cols: cols,
			TileRows: 8, TileCols: tileCols, Clusters: 3,
			P: 1, K: 32, Seed: seed, Estimator: "median",
		})
		return ep
	}
	cfg := Config{}
	cfg.setDefaults()

	c := &Coordinator{cfg: cfg}
	c.endpoints = []*endpoint{mk(0, 32, 5, 8), mk(32, 32, 7, 8)} // seed mismatch
	c.refreshMap()
	if c.currentMap() != nil {
		t.Error("seed-mismatched fleet produced a map")
	}

	c = &Coordinator{cfg: cfg}
	c.endpoints = []*endpoint{mk(0, 32, 5, 8), mk(20, 32, 5, 8)} // 20 not tile-aligned
	c.refreshMap()
	if c.currentMap() != nil {
		t.Error("tile-misaligned fleet produced a map")
	}

	c = &Coordinator{cfg: cfg}
	c.endpoints = []*endpoint{mk(0, 32, 5, 8), mk(64, 32, 5, 8)} // gap at 32..64
	c.refreshMap()
	m := c.currentMap()
	if m == nil || m.complete {
		t.Errorf("gapped fleet: map %+v, want incomplete", m)
	}

	c = &Coordinator{cfg: cfg}
	c.endpoints = []*endpoint{mk(0, 32, 5, 8), mk(32, 32, 5, 8), mk(32, 32, 5, 8)}
	c.refreshMap()
	m = c.currentMap()
	if m == nil || !m.complete || len(m.ranges) != 2 || len(m.ranges[1].endpoints) != 2 {
		t.Fatalf("replicated fleet map: %+v", m)
	}
}

func TestLiveEndpointOrdering(t *testing.T) {
	h1 := &endpoint{url: "h1", state: StateHealthy}
	h2 := &endpoint{url: "h2", state: StateHealthy}
	pr := &endpoint{url: "p", state: StateProbation}
	dd := &endpoint{url: "d", state: StateDead}
	rng := &shardRange{endpoints: []*endpoint{h1, dd, h2, pr}}

	got := liveEndpoints(rng, 0)
	if len(got) != 3 || got[0] != h1 || got[1] != h2 || got[2] != pr {
		t.Errorf("rot 0: %v", names(got))
	}
	got = liveEndpoints(rng, 1)
	if len(got) != 3 || got[0] != h2 || got[1] != h1 || got[2] != pr {
		t.Errorf("rot 1: %v (probation must stay last)", names(got))
	}
}

func names(eps []*endpoint) []string {
	var out []string
	for _, ep := range eps {
		out = append(out, ep.url)
	}
	return out
}
