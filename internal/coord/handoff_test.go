// The handoff chaos drill: migrate column bands between shard
// processes — planned (register replacement, drain, deregister) and
// unplanned (SIGKILL-style severed connections, modeled with
// faultinject.Breaker) — under live mixed replay traffic plus a
// concurrent ingest pusher, and prove the PR-8 contract held the whole
// time: every answer reference-equal, tagged partial, or a clean
// 503/504; epochs monotone; every acknowledged ingest durably present.
package coord

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/faultinject"
	"repro/internal/replay"
	"repro/internal/server"
)

func TestHandoffDrillUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second drill")
	}
	var (
		transMu sync.Mutex
		trans   = map[string][]string{} // endpoint URL -> transitions
	)
	ings := []*recIngestor{{}, {}, {}}
	f := newFleetSrv(t, Config{
		OnStateChange: func(ep string, from, to State) {
			transMu.Lock()
			trans[ep] = append(trans[ep], fmt.Sprintf("%v->%v", from, to))
			transMu.Unlock()
		},
	}, false, func(i int) server.Config {
		return server.Config{Ingestor: ings[i]}
	})

	refs := make([]server.NearestResult, 48)
	for i := range refs {
		refs[i] = mustNearest(t, f.ref.URL+fmt.Sprintf("/v1/nearest?q=%s&mode=sketch",
			server.FormatRect(tileRect(i))))
	}

	// Background load: the mixed-op replay workload, coord dialect,
	// partials allowed — it counts epochs so the run itself proves the
	// cutover happened mid-traffic.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	type replayOut struct {
		rep *replay.Report
		err error
	}
	replayDone := make(chan replayOut, 1)
	// 3000 @ 250 qps spreads arrivals over 12s: the cutover phases below
	// take ~2s unloaded and several times that under -race, and the
	// epoch-change assertion needs served queries on BOTH sides of the
	// cutover — a short replay finishes before a race-slowed register
	// round ever bumps the epoch.
	go func() {
		rep, err := replay.Run(ctx, replay.Config{
			BaseURL: f.ts.URL, Target: "coord", Partial: "allow",
			Queries: 3000, Rate: 250, Mode: "sketch", Seed: 7,
			Ops: []replay.OpWeight{
				{Op: "nearest", Weight: 3}, {Op: "distance", Weight: 2}, {Op: "assign", Weight: 1},
			},
		})
		replayDone <- replayOut{rep, err}
	}()

	// Concurrent ingest pusher: sequential records through the
	// coordinator proxy; only nil-error acks count as acknowledged.
	pushStop := make(chan struct{})
	ackedCh := make(chan []string, 1)
	go func() {
		cl, err := client.New(client.Config{
			BaseURL: f.ts.URL, MaxAttempts: 4,
			BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
		})
		if err != nil {
			t.Errorf("pusher client: %v", err)
			ackedCh <- nil
			return
		}
		var acked []string
		for i := 0; ; i++ {
			select {
			case <-pushStop:
				ackedCh <- acked
				return
			default:
			}
			rec := fmt.Sprintf("rec-%04d", i)
			if res, err := cl.Ingest(ctx, []byte(rec)); err == nil {
				acked = append(acked, res.Label)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// check issues one verification nearest and enforces the contract;
	// it also watches the epoch stamp for monotonicity.
	var served, partials, unavailable int
	lastEpoch := int64(0)
	check := func(i int) {
		t.Helper()
		idx := i % 48
		code, hdr, body := httpGet(t, f.ts.URL+fmt.Sprintf("/v1/nearest?q=%s&mode=sketch",
			server.FormatRect(tileRect(idx))))
		if e := headerEpoch(hdr); e > 0 {
			if e < lastEpoch {
				t.Errorf("check %d: epoch went backwards: %d after %d", i, e, lastEpoch)
			}
			lastEpoch = e
		}
		switch code {
		case 200:
			var res NearestResult
			if err := json.Unmarshal(body, &res); err != nil {
				t.Fatalf("check %d: bad JSON %s", i, body)
			}
			if res.Partial {
				partials++
				if len(res.Missing) == 0 {
					t.Errorf("check %d: partial without missing_cols: %s", i, body)
				}
				return
			}
			served++
			ref := refs[idx]
			if res.Tile != ref.Tile || res.Rect != ref.Rect || !closeEnough(res.Distance, ref.Distance) {
				t.Errorf("check %d: UNFLAGGED WRONG answer\n  ref   %+v\n  coord %s", i, ref, body)
			}
		case http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			unavailable++
		default:
			t.Errorf("check %d: unexpected status %d (%s)", i, code, body)
		}
	}
	checkN := func(from, n int) int {
		for i := from; i < from+n; i++ {
			check(i)
		}
		return from + n
	}
	i := checkN(0, 12)

	// --- Phase A: planned handoff of the rightmost band (the ingest
	// target) — register the replacement, let it earn traffic, drain
	// and deregister the old owner, then "kill" the drained process.
	replIng := &recIngestor{}
	repl2 := f.spawnShard(t, f.shards[2].snap, server.Config{Ingestor: replIng})
	if _, err := f.coord.Register(repl2.url()); err != nil {
		t.Fatalf("register replacement: %v", err)
	}
	waitStateURL(t, f.coord, repl2.url(), StateHealthy)
	i = checkN(i, 12)

	dctx, dcancel := context.WithTimeout(ctx, 10*time.Second)
	if _, err := f.coord.Deregister(dctx, f.shards[2].url(), true); err != nil {
		t.Fatalf("deregister with drain: %v", err)
	}
	dcancel()
	oldKill := &faultinject.Breaker{}
	oldKill.Trip() // tearing down a drained process must be invisible
	f.shards[2].kill.Store(oldKill)
	i = checkN(i, 12)
	if hits := oldKill.Hits(); hits > 0 {
		t.Errorf("drained, deregistered shard still receiving traffic: %d hits", hits)
	}

	// --- Phase B: unplanned loss and recovery — SIGKILL band 0's only
	// endpoint mid-traffic, watch it ejected, then revive it and watch
	// the dead -> probation -> healthy re-admission.
	kill0 := &faultinject.Breaker{}
	kill0.Trip()
	f.shards[0].kill.Store(kill0)
	waitStateURL(t, f.coord, f.shards[0].url(), StateDead)
	i = checkN(i, 12)

	kill0.Reset()
	waitStateURL(t, f.coord, f.shards[0].url(), StateHealthy)
	i = checkN(i, 12)
	transMu.Lock()
	seq := fmt.Sprint(trans[f.shards[0].url()])
	transMu.Unlock()
	for _, want := range []string{"healthy->dead", "dead->probation", "probation->healthy"} {
		if !strings.Contains(seq, want) {
			t.Errorf("band-0 transitions %s missing %q", seq, want)
		}
	}

	// Drain the drill: stop the pusher, wait out the replay.
	close(pushStop)
	acked := <-ackedCh
	out := <-replayDone
	if out.err != nil {
		t.Fatalf("replay: %v", out.err)
	}
	rep := out.rep

	t.Logf("checks: served=%d partial=%d unavailable=%d; replay: served=%d shed=%d errors=%d epochs=%d..%d (%d changes); acked ingests=%d",
		served, partials, unavailable, rep.Served, rep.Shed, rep.Errors,
		rep.EpochMin, rep.EpochMax, rep.EpochChanges, len(acked))

	if served == 0 {
		t.Error("no clean reference-equal answers across the whole drill")
	}
	if rep.Served == 0 {
		t.Error("replay run served nothing")
	}
	if rep.Errors != 0 {
		t.Errorf("replay saw %d hard errors; every failure must be a clean 503/504", rep.Errors)
	}
	if rep.EpochChanges < 1 {
		t.Errorf("replay observed %d epoch changes; the cutover must be visible mid-run", rep.EpochChanges)
	}
	if rep.EpochMax < rep.EpochMin {
		t.Errorf("replay epoch range inverted: %d..%d", rep.EpochMin, rep.EpochMax)
	}

	// No acknowledged record lost: every acked label is durably present
	// in some band-2 generation (old owner or replacement).
	stored := map[string]bool{}
	for _, ing := range append([]*recIngestor{replIng}, ings...) {
		for _, l := range ing.got() {
			stored[l] = true
		}
	}
	if len(acked) == 0 {
		t.Error("pusher acknowledged nothing; the drill never exercised ingest")
	}
	for _, l := range acked {
		if !stored[l] {
			t.Errorf("ACKED RECORD LOST: %q acknowledged but stored nowhere", l)
		}
	}
	// And the handoff moved the growing edge: the replacement ingested.
	if len(replIng.got()) == 0 {
		t.Error("replacement shard never received an ingest after the cutover")
	}
}
