package coord

import (
	"context"
	"fmt"
	"io"
	"net/http"
)

// handleIngest proxies POST /v1/ingest to the shard owning the
// rightmost column band — the time axis grows at the right edge, so
// that shard is where new records land and the fleet ingests like a
// single server. The proxy is deliberately dumb about failure:
//
//   - shard 503 (backpressure) relays verbatim, Retry-After included,
//     and does NOT strike the endpoint's health — a full WAL is load,
//     not death, and ejecting a shard for it would turn backpressure
//     into an outage;
//   - a transport error answers 502 with no failover and no retry: the
//     record may or may not have been applied, and replaying it at a
//     replica could double-ingest. Only a relayed 503 guarantees
//     nothing was stored; the pusher owns resending after anything
//     else, exactly as it does talking to a shard directly.
func (c *Coordinator) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	m := c.currentMap()
	if m == nil || len(m.ranges) == 0 {
		c.writeUnavailable(w, "no shard has reported yet, retry later")
		return
	}
	w.Header().Set(epochHeader, fmt.Sprint(m.epoch))
	rng := m.ranges[len(m.ranges)-1] // rightmost band owns the growing edge
	eps := liveEndpoints(rng, c.rr.Add(1))
	if len(eps) == 0 {
		c.writeUnavailable(w, (&errNoEndpoints{rng: rng}).Error())
		return
	}
	ep := eps[0]
	ep.inflight.Add(1) // drain covers in-flight ingests too
	defer ep.inflight.Add(-1)

	ctx, cancel := context.WithTimeout(r.Context(), c.cfg.MaxTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ep.url+"/v1/ingest", r.Body)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	req.ContentLength = r.ContentLength
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	mIngestProxied.Add(1)
	resp, err := c.ingestHTTP.Do(req)
	if err != nil {
		c.noteFailure(ep, false)
		writeError(w, http.StatusBadGateway, fmt.Sprintf("ingest proxy to %s: %v", ep.url, err))
		return
	}
	defer resp.Body.Close()
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body) //nolint:errcheck // client went away; nothing to do
}
