// Tests of dynamic fleet membership: the loopback-gated admin surface
// (register/deregister with drain), the epoch-stamped shard map, the
// deregistration fence and its gap semantics, the coordinator-routed
// ingest proxy, and the seeded probe-interval jitter. The invariant
// carried over from the chaos suite holds throughout: membership edits
// may make answers partial (tagged) or unavailable (503), never
// silently wrong.
package coord

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/faultinject"
	"repro/internal/server"
)

func httpPostForm(t *testing.T, u string, vals url.Values) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.PostForm(u, vals)
	if err != nil {
		t.Fatalf("POST %s: %v", u, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: read: %v", u, err)
	}
	return resp.StatusCode, resp.Header, body
}

// headerEpoch parses the X-Tabmine-Epoch stamp (0 = absent).
func headerEpoch(h http.Header) int64 {
	e, _ := strconv.ParseInt(h.Get("X-Tabmine-Epoch"), 10, 64)
	return e
}

// TestProbeJitterDeterministic: the jitter stream is a seeded PCG —
// one seed replays the identical probe schedule, every draw stays in
// [0.9, 1.1)×base, and different seeds diverge.
func TestProbeJitterDeterministic(t *testing.T) {
	base := 250 * time.Millisecond
	draw := func(seed uint64, n int) []time.Duration {
		rng := rand.New(rand.NewPCG(seed, 0x70726f6265))
		out := make([]time.Duration, n)
		for i := range out {
			out[i] = jitteredInterval(base, rng)
		}
		return out
	}
	a, b := draw(42, 64), draw(42, 64)
	lo, hi := time.Duration(float64(base)*0.9), time.Duration(float64(base)*1.1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: same seed diverged: %v vs %v", i, a[i], b[i])
		}
		if a[i] < lo || a[i] >= hi {
			t.Errorf("draw %d: %v outside [%v, %v)", i, a[i], lo, hi)
		}
	}
	c := draw(43, 64)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced the identical jitter stream")
	}
}

// TestRegisterDeregisterLifecycle is the planned-handoff protocol over
// the admin surface: register a replacement for a band, wait for it to
// earn traffic through probation, deregister the old owner with drain,
// and verify the fleet still answers reference-equal with the counters
// and epoch telling the story.
func TestRegisterDeregisterLifecycle(t *testing.T) {
	f := newFleet(t, Config{}, false)
	stats0 := ReadStats()
	epoch0 := f.coord.Epoch()
	if epoch0 < 1 {
		t.Fatalf("healthy fleet at epoch %d, want >= 1", epoch0)
	}

	// Every answer carries the epoch stamp, and it matches Epoch().
	path := fmt.Sprintf("/v1/nearest?q=%s&mode=sketch", server.FormatRect(tileRect(4)))
	code, hdr, body := httpGet(t, f.ts.URL+path)
	if code != 200 {
		t.Fatalf("pre-handoff nearest: %d (%s)", code, body)
	}
	if he := headerEpoch(hdr); he != epoch0 {
		t.Errorf("X-Tabmine-Epoch %d, Epoch() %d", he, epoch0)
	}

	// Register a replacement serving band 1's snapshot.
	repl := f.spawnShard(t, f.shards[1].snap, server.Config{})
	code, _, body = httpPostForm(t, f.ts.URL+"/admin/register", url.Values{"endpoint": {repl.url()}})
	var reg adminResult
	if code != 200 || json.Unmarshal(body, &reg) != nil {
		t.Fatalf("/admin/register: %d (%s)", code, body)
	}
	if reg.Status != "registered" || reg.Endpoint != repl.url() {
		t.Errorf("register result: %+v", reg)
	}
	waitStateURL(t, f.coord, repl.url(), StateHealthy)
	epoch1 := f.coord.Epoch()
	if epoch1 <= epoch0 {
		t.Errorf("epoch did not advance across registration: %d -> %d", epoch0, epoch1)
	}

	// Deregister the old band-1 owner, draining its in-flight work.
	code, _, body = httpPostForm(t, f.ts.URL+"/admin/deregister",
		url.Values{"endpoint": {f.shards[1].url()}, "drain": {"true"}})
	var dereg adminResult
	if code != 200 || json.Unmarshal(body, &dereg) != nil {
		t.Fatalf("/admin/deregister: %d (%s)", code, body)
	}
	if dereg.Status != "deregistered" || !dereg.Drained || dereg.Epoch <= epoch1 {
		t.Errorf("deregister result: %+v (epoch before %d)", dereg, epoch1)
	}
	for _, ep := range f.coord.memberSnapshot() {
		if ep.url == f.shards[1].url() {
			t.Errorf("deregistered endpoint still in the fleet")
		}
	}

	// The band answers clean and reference-equal from the replacement.
	if !f.coord.Ready() {
		t.Error("Ready() false after a covered handoff")
	}
	code, hdr, body = httpGet(t, f.ts.URL+path)
	if code != 200 {
		t.Fatalf("post-handoff nearest: %d (%s)", code, body)
	}
	if he := headerEpoch(hdr); he != dereg.Epoch {
		t.Errorf("post-handoff epoch stamp %d, want %d", he, dereg.Epoch)
	}
	var res NearestResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("bad JSON %s: %v", body, err)
	}
	if res.Partial {
		t.Errorf("covered handoff answered partial: %s", body)
	}
	var ref server.NearestResult
	_, _, refBody := httpGet(t, f.ref.URL+path)
	if err := json.Unmarshal(refBody, &ref); err != nil {
		t.Fatalf("ref: %v", err)
	}
	if res.Tile != ref.Tile || res.Rect != ref.Rect || !closeEnough(res.Distance, ref.Distance) {
		t.Errorf("post-handoff mismatch: ref %+v, coord %s", ref, body)
	}

	stats1 := ReadStats()
	if d := stats1.Registers - stats0.Registers; d != 1 {
		t.Errorf("register counter advanced by %d, want 1", d)
	}
	if d := stats1.Deregisters - stats0.Deregisters; d != 1 {
		t.Errorf("deregister counter advanced by %d, want 1", d)
	}
	if stats1.Epoch != f.coord.Epoch() {
		t.Errorf("epoch gauge %d, Epoch() %d", stats1.Epoch, f.coord.Epoch())
	}
	// The state gauges converge to the steady fleet: 3 healthy.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := ReadStats()
		if s.EndpointsHealthy == 3 && s.EndpointsProbation == 0 && s.EndpointsDead == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("endpoint gauges stuck at healthy=%d probation=%d dead=%d",
				s.EndpointsHealthy, s.EndpointsProbation, s.EndpointsDead)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDeregisterDrainWaitsInflight: deregistration with drain does not
// return while a sub-query launched before the fence is still running
// against the endpoint — "deregister returned 200" licenses tearing
// the process down.
func TestDeregisterDrainWaitsInflight(t *testing.T) {
	f := newFleet(t, Config{}, false)
	g := faultinject.NewGate()
	f.shards[2].gate.Store(g)

	// Park one query inside shard 2's sketch handler.
	qDone := make(chan int, 1)
	go func() {
		resp, err := http.Get(f.ts.URL + fmt.Sprintf("/v1/nearest?q=%s&mode=sketch&timeout_ms=10000",
			server.FormatRect(tileRect(8))))
		if err != nil {
			qDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		qDone <- resp.StatusCode
	}()
	g.AwaitArrivals(1)

	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_, err := f.coord.Deregister(ctx, f.shards[2].url(), true)
		drainDone <- err
	}()
	select {
	case err := <-drainDone:
		t.Fatalf("drain returned (%v) while a sub-query was parked in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	g.Open()
	select {
	case err := <-drainDone:
		if err != nil {
			t.Fatalf("drain after gate opened: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain never completed after the gate opened")
	}
	// The parked query completes against the pre-fence map.
	if code := <-qDone; code != 200 {
		t.Errorf("in-flight query finished with %d, want 200", code)
	}
}

// TestDeregisterSoleOwnerGapAnswers: removing a band's only endpoint
// opens a column gap. Gap columns must surface as Missing tags or
// clean 503s — never as a silently narrowed answer — and registering a
// replacement closes the gap.
func TestDeregisterSoleOwnerGapAnswers(t *testing.T) {
	f := newFleet(t, Config{}, false)
	epoch0 := f.coord.Epoch()

	code, _, body := httpPostForm(t, f.ts.URL+"/admin/deregister",
		url.Values{"endpoint": {f.shards[1].url()}, "drain": {"false"}})
	if code != 200 {
		t.Fatalf("/admin/deregister: %d (%s)", code, body)
	}
	if f.coord.Ready() {
		t.Error("Ready() true with cols 32-64 uncovered")
	}
	if e := f.coord.Epoch(); e <= epoch0 {
		t.Errorf("epoch did not advance across deregistration: %d -> %d", epoch0, e)
	}

	// A band-0 query answers from the survivors, tagged with the gap.
	path := fmt.Sprintf("/v1/nearest?q=%s&mode=sketch", server.FormatRect(tileRect(0)))
	code, _, body = httpGet(t, f.ts.URL+path)
	if code != 200 {
		t.Fatalf("gap-era nearest: %d (%s)", code, body)
	}
	var res NearestResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("bad JSON %s: %v", body, err)
	}
	if !res.Partial || len(res.Missing) != 1 || res.Missing[0] != "32-64" {
		t.Errorf("gap tags: %s", body)
	}

	// partial=deny and gap-owned queries refuse cleanly.
	code, hdr, body := httpGet(t, f.ts.URL+path+"&partial=deny")
	if code != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Errorf("gap partial=deny: %d, Retry-After %q (%s)", code, hdr.Get("Retry-After"), body)
	}
	owned := fmt.Sprintf("/v1/nearest?q=%s&mode=sketch", server.FormatRect(tileRect(4)))
	code, hdr, body = httpGet(t, f.ts.URL+owned)
	if code != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Errorf("gap-owned query: %d (%s)", code, body)
	}
	dpath := fmt.Sprintf("/v1/distance?a=%s&b=%s&mode=sketch",
		server.FormatRect(tileRect(4)), server.FormatRect(tileRect(0)))
	if code, _, body = httpGet(t, f.ts.URL+dpath); code != http.StatusServiceUnavailable {
		t.Errorf("gap-resident distance: %d (%s)", code, body)
	}
	// Exact distance inside the gap is an availability problem (503),
	// not a spans-a-boundary client error (400).
	epath := fmt.Sprintf("/v1/distance?a=%s&b=%s&mode=exact",
		server.FormatRect(tileRect(4)), server.FormatRect(tileRect(16)))
	if code, _, body = httpGet(t, f.ts.URL+epath); code != http.StatusServiceUnavailable {
		t.Errorf("gap-resident exact distance: %d (%s)", code, body)
	}

	// Register a replacement: the gap closes and answers are clean again.
	repl := f.spawnShard(t, f.shards[1].snap, server.Config{})
	if code, _, body = httpPostForm(t, f.ts.URL+"/admin/register",
		url.Values{"endpoint": {repl.url()}}); code != 200 {
		t.Fatalf("/admin/register replacement: %d (%s)", code, body)
	}
	waitStateURL(t, f.coord, repl.url(), StateHealthy)
	if !f.coord.Ready() {
		t.Error("Ready() false after the replacement was admitted")
	}
	code, _, body = httpGet(t, f.ts.URL+owned)
	if code != 200 {
		t.Fatalf("post-replacement nearest: %d (%s)", code, body)
	}
	var healed NearestResult
	if err := json.Unmarshal(body, &healed); err != nil || healed.Partial {
		t.Errorf("post-replacement answer: %s (err %v)", body, err)
	}
}

// TestSetEndpointsReconcile drives the SIGHUP path: reconcile the fleet
// against a re-read shard list, registering the difference and fencing
// plus background-draining the members that fell off the list.
func TestSetEndpointsReconcile(t *testing.T) {
	f := newFleet(t, Config{}, false)
	repl := f.spawnShard(t, f.shards[2].snap, server.Config{})

	want := []string{f.shards[0].url(), f.shards[1].url(), repl.url()}
	added, removed, err := f.coord.SetEndpoints(want)
	if err != nil {
		t.Fatalf("SetEndpoints: %v", err)
	}
	if len(added) != 1 || added[0] != repl.url() {
		t.Errorf("added %v, want [%s]", added, repl.url())
	}
	if len(removed) != 1 || removed[0] != f.shards[2].url() {
		t.Errorf("removed %v, want [%s]", removed, f.shards[2].url())
	}
	// Removal drains in the background; membership converges.
	deadline := time.Now().Add(5 * time.Second)
	for {
		urls := map[string]bool{}
		for _, ep := range f.coord.memberSnapshot() {
			urls[ep.url] = true
		}
		if !urls[f.shards[2].url()] && urls[repl.url()] && len(urls) == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("membership never converged: %v", urls)
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitStateURL(t, f.coord, repl.url(), StateHealthy)
	if !f.coord.Ready() {
		t.Error("Ready() false after reconciliation")
	}

	// A truncated list must not empty a serving fleet.
	if _, _, err := f.coord.SetEndpoints(nil); err == nil {
		t.Error("SetEndpoints(nil) did not refuse")
	}
}

// TestAdminValidation: the admin surface refuses non-loopback peers,
// wrong methods, malformed parameters, duplicates, and unknowns with
// distinct statuses.
func TestAdminValidation(t *testing.T) {
	f := newFleet(t, Config{}, false)

	if code, hdr, _ := httpGet(t, f.ts.URL+"/admin/register"); code != http.StatusMethodNotAllowed ||
		hdr.Get("Allow") != http.MethodPost {
		t.Errorf("GET /admin/register: %d, Allow %q", code, hdr.Get("Allow"))
	}
	cases := []struct {
		path string
		vals url.Values
		want int
	}{
		{"/admin/register", url.Values{}, http.StatusBadRequest},
		{"/admin/register", url.Values{"endpoint": {"not a url"}}, http.StatusBadRequest},
		{"/admin/register", url.Values{"endpoint": {f.shards[0].url()}}, http.StatusConflict},
		{"/admin/deregister", url.Values{"endpoint": {"http://127.0.0.1:1/nope"}}, http.StatusNotFound},
		{"/admin/deregister", url.Values{"endpoint": {f.shards[0].url()}, "drain": {"banana"}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code, _, body := httpPostForm(t, f.ts.URL+tc.path, tc.vals); code != tc.want {
			t.Errorf("POST %s %v: %d, want %d (%s)", tc.path, tc.vals, code, tc.want, body)
		}
	}

	// A non-loopback peer is refused before any parsing happens.
	req := httptest.NewRequest(http.MethodPost, "/admin/register",
		strings.NewReader("endpoint="+url.QueryEscape(f.shards[0].url())))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.RemoteAddr = "203.0.113.9:4444"
	rec := httptest.NewRecorder()
	f.coord.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusForbidden {
		t.Errorf("non-loopback admin call: %d, want 403", rec.Code)
	}

	for addr, want := range map[string]bool{
		"127.0.0.1:5000": true, "[::1]:80": true, "127.8.4.4": true,
		"203.0.113.9:4444": false, "10.0.0.1:1": false, "garbage": false, "": false,
	} {
		if got := isLoopbackAddr(addr); got != want {
			t.Errorf("isLoopbackAddr(%q) = %v, want %v", addr, got, want)
		}
	}

	// The fleet is untouched by the refusals.
	if got := len(f.coord.memberSnapshot()); got != 3 {
		t.Errorf("fleet size %d after refused admin calls, want 3", got)
	}
}

// recIngestor is a recording stub Ingestor: it stores record bodies as
// labels and, with backlog set, refuses with ErrIngestBacklog (which
// the server maps to 503 + Retry-After).
type recIngestor struct {
	mu      sync.Mutex
	labels  []string
	backlog atomic.Bool
}

func (ri *recIngestor) IngestRecord(_ context.Context, body io.Reader) (*server.IngestResult, error) {
	b, err := io.ReadAll(body)
	if err != nil {
		return nil, err
	}
	if ri.backlog.Load() {
		return nil, fmt.Errorf("stub queue full: %w", server.ErrIngestBacklog)
	}
	ri.mu.Lock()
	defer ri.mu.Unlock()
	ri.labels = append(ri.labels, string(b))
	return &server.IngestResult{Label: string(b), Cols: 1, ColsTotal: len(ri.labels)}, nil
}

func (ri *recIngestor) got() []string {
	ri.mu.Lock()
	defer ri.mu.Unlock()
	return append([]string(nil), ri.labels...)
}

// TestIngestProxy: POST /v1/ingest on the coordinator lands on the
// shard owning the rightmost column band, relays backpressure verbatim
// without striking the shard's health, and maps transport failures to
// 502 without retrying (a replay could double-ingest).
func TestIngestProxy(t *testing.T) {
	ings := []*recIngestor{{}, {}, {}}
	f := newFleetSrv(t, Config{}, false, func(i int) server.Config {
		return server.Config{Ingestor: ings[i]}
	})
	stats0 := ReadStats()

	post := func(rec string) (int, http.Header, []byte) {
		t.Helper()
		resp, err := http.Post(f.ts.URL+"/v1/ingest", "application/octet-stream", strings.NewReader(rec))
		if err != nil {
			t.Fatalf("POST /v1/ingest: %v", err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, resp.Header, body
	}

	code, hdr, body := post("rec-a")
	if code != 200 {
		t.Fatalf("ingest: %d (%s)", code, body)
	}
	if headerEpoch(hdr) == 0 {
		t.Error("ingest answer missing the epoch stamp")
	}
	var res server.IngestResult
	if err := json.Unmarshal(body, &res); err != nil || res.Label != "rec-a" {
		t.Errorf("ingest result %s (err %v)", body, err)
	}
	if got := ings[2].got(); len(got) != 1 || got[0] != "rec-a" {
		t.Errorf("rightmost shard stored %v, want [rec-a]", got)
	}
	if len(ings[0].got())+len(ings[1].got()) != 0 {
		t.Errorf("non-rightmost shards received ingests: %v / %v", ings[0].got(), ings[1].got())
	}

	// Backpressure relays verbatim and does not strike the endpoint.
	ings[2].backlog.Store(true)
	for i := 0; i < 4; i++ {
		code, hdr, body = post("rec-b")
		if code != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
			t.Fatalf("backpressure relay: %d, Retry-After %q (%s)", code, hdr.Get("Retry-After"), body)
		}
	}
	waitStateURL(t, f.coord, f.shards[2].url(), StateHealthy) // still healthy: 503 is load, not death

	// The retrying client rides the 503s out: Sleep stands in for the
	// backoff wait and clears the backlog, so the second attempt lands.
	cl, err := client.New(client.Config{
		BaseURL: f.ts.URL, MaxAttempts: 3,
		Sleep: func(context.Context, time.Duration) error {
			ings[2].backlog.Store(false)
			return nil
		},
	})
	if err != nil {
		t.Fatalf("client.New: %v", err)
	}
	ires, err := cl.Ingest(context.Background(), []byte("rec-c"))
	if err != nil {
		t.Fatalf("client Ingest through backpressure: %v", err)
	}
	if ires.Label != "rec-c" {
		t.Errorf("ingest ack %+v, want label rec-c", ires)
	}

	// A severed connection is ambiguous: 502, no retry, no failover.
	br := &faultinject.Breaker{}
	br.Trip()
	f.shards[2].kill.Store(br)
	code, _, body = post("rec-d")
	if code != http.StatusBadGateway {
		t.Errorf("severed ingest: %d (%s), want 502", code, body)
	}
	f.shards[2].kill.Store(nil)
	if got := ings[2].got(); len(got) != 2 || got[1] != "rec-c" {
		t.Errorf("rightmost shard stored %v, want [rec-a rec-c]", got)
	}

	if code, hdr, _ = httpGet(t, f.ts.URL+"/v1/ingest"); code != http.StatusMethodNotAllowed ||
		hdr.Get("Allow") != http.MethodPost {
		t.Errorf("GET /v1/ingest: %d, Allow %q", code, hdr.Get("Allow"))
	}

	if d := ReadStats().IngestProxied - stats0.IngestProxied; d < 3 {
		t.Errorf("ingest proxy counter advanced by %d, want >= 3", d)
	}
}

// TestStaleBaseColFence: a process that reuses a registered address but
// serves a different column placement is fenced by the base_col echo —
// its answers are never merged as if they covered the mapped columns.
// (The supported handoff protocol never creates this state; the fence
// is the backstop for an in-place swap the prober has not seen yet.)
func TestStaleBaseColFence(t *testing.T) {
	// Probes effectively off: the initial synchronous round builds the
	// map, then placement knowledge goes stale on purpose.
	f := newFleet(t, Config{ProbeInterval: time.Hour}, false)

	// Swap shard 1's handler for a server whose snapshot claims base
	// col 0 (shard 0's snapshot) — same sketch params, wrong placement.
	impostor, err := server.New(f.shards[0].snap, server.Config{})
	if err != nil {
		t.Fatalf("impostor New: %v", err)
	}
	f.shards[1].h.Store(impostor.Handler())

	// A query OWNED by the swapped band: the owner's sketch comes back
	// for the wrong columns, is fenced, and the query refuses cleanly.
	owned := fmt.Sprintf("/v1/nearest?q=%s&mode=sketch", server.FormatRect(tileRect(4)))
	code, hdr, body := httpGet(t, f.ts.URL+owned)
	if code != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Fatalf("stale owner: %d (%s), want 503", code, body)
	}

	// A query owned elsewhere: the swapped band's fan-out answer is
	// fenced too, so the merge is honest — partial, naming the columns.
	other := fmt.Sprintf("/v1/nearest?q=%s&mode=sketch", server.FormatRect(tileRect(0)))
	code, _, body = httpGet(t, f.ts.URL+other)
	if code != 200 {
		t.Fatalf("fan-out past stale shard: %d (%s)", code, body)
	}
	var res NearestResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("bad JSON %s: %v", body, err)
	}
	if !res.Partial || len(res.Missing) != 1 || res.Missing[0] != "32-64" {
		t.Errorf("stale shard not fenced out of the merge: %s", body)
	}
	ref := mustNearest(t, f.ref.URL+other)
	if res.Tile == -1 || (res.Tile == ref.Tile && !closeEnough(res.Distance, ref.Distance) &&
		res.Distance < ref.Distance) {
		t.Errorf("fenced merge produced an impossible best: %s (ref %+v)", body, ref)
	}
}

func mustNearest(t *testing.T, u string) server.NearestResult {
	t.Helper()
	code, _, body := httpGet(t, u)
	var res server.NearestResult
	if code != 200 || json.Unmarshal(body, &res) != nil {
		t.Fatalf("GET %s: %d (%s)", u, code, body)
	}
	return res
}
