package coord

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand/v2"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/server"
)

// Endpoint health: active probing with consecutive-failure ejection and
// probation re-entry.
//
//	healthy --EjectAfter consecutive failures--> dead
//	dead ----ReadmitAfter consecutive probe OKs--> probation
//	probation --ReadmitAfter more probe OKs--> healthy
//	probation --any failure--> dead
//
// Failures are probe failures AND passive sub-query failures from the
// serving path (a shard that answers probes but times out real queries
// must still get ejected). Only probes count toward re-admission: a
// dead endpoint receives no traffic, so probes are its only way back.

// shardInfoSnapshot is the part of a shard's self-description the
// coordinator keeps per endpoint (flattened from server.ShardInfo).
type shardInfoSnapshot struct {
	BaseCol, Cols, Rows          int
	TileRows, TileCols, Clusters int
	P                            float64
	K                            int
	Seed                         uint64
	Estimator                    string
	Generation                   int64
}

// endpoint is one shard server address plus its health bookkeeping.
type endpoint struct {
	url string
	cl  *client.Client // retrying sub-query client

	// draining is the deregister fence: once set, liveEndpoints never
	// selects this endpoint again, even for requests still holding a
	// shard map from before the membership change. inflight counts
	// launched sub-queries (and proxied ingests) so Deregister can wait
	// for the tail to finish before the shard is torn down.
	draining atomic.Bool
	inflight atomic.Int64

	mu      sync.Mutex
	state   State
	fails   int // consecutive failures (healthy state)
	oks     int // consecutive probe successes (dead/probation states)
	info    shardInfoSnapshot
	hasInfo bool
}

func (ep *endpoint) currentState() State {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.state
}

func (ep *endpoint) lastInfo() (shardInfoSnapshot, bool) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.info, ep.hasInfo
}

func (ep *endpoint) setInfo(in *server.ShardInfo) {
	ep.mu.Lock()
	ep.info = shardInfoSnapshot{
		BaseCol: in.BaseCol, Cols: in.Cols, Rows: in.Rows,
		TileRows: in.TileRows, TileCols: in.TileCols, Clusters: in.Clusters,
		P: in.P, K: in.K, Seed: in.Seed, Estimator: in.Estimator,
		Generation: in.Generation,
	}
	ep.hasInfo = true
	ep.mu.Unlock()
}

// noteFailure records one failure (probe or passive) and applies the
// ejection rules. boot relaxes nothing — it only suppresses the
// state-change log during New's synchronous first round.
func (c *Coordinator) noteFailure(ep *endpoint, boot bool) {
	ep.mu.Lock()
	from := ep.state
	to := from
	switch ep.state {
	case StateHealthy:
		ep.fails++
		if ep.fails >= c.cfg.EjectAfter {
			to = StateDead
		}
	case StateProbation:
		// One strike: probation exists to catch flapping processes
		// before they re-earn full trust.
		to = StateDead
	case StateDead:
		ep.oks = 0
	}
	if to != from {
		ep.state = to
		ep.fails, ep.oks = 0, 0
	}
	ep.mu.Unlock()
	if to != from {
		mEjections.Add(1)
		if !boot {
			c.cfg.Logf("coord: endpoint %s: %v -> %v", ep.url, from, to)
		}
		if c.cfg.OnStateChange != nil {
			c.cfg.OnStateChange(ep.url, from, to)
		}
	}
}

// noteProbeOK records one successful probe and applies the
// re-admission rules.
func (c *Coordinator) noteProbeOK(ep *endpoint, boot bool) {
	ep.mu.Lock()
	from := ep.state
	to := from
	switch ep.state {
	case StateHealthy:
		ep.fails = 0
	case StateDead:
		ep.oks++
		if boot || ep.oks >= c.cfg.ReadmitAfter {
			// At boot one good probe admits straight to healthy: there
			// is no failure history to be suspicious of.
			to = StateProbation
			if boot {
				to = StateHealthy
			}
		}
	case StateProbation:
		ep.oks++
		if ep.oks >= c.cfg.ReadmitAfter {
			to = StateHealthy
		}
	}
	if to != from {
		ep.state = to
		ep.fails, ep.oks = 0, 0
	}
	ep.mu.Unlock()
	if to != from {
		if from == StateDead {
			mReadmits.Add(1)
		}
		if !boot {
			c.cfg.Logf("coord: endpoint %s: %v -> %v", ep.url, from, to)
		}
		if c.cfg.OnStateChange != nil {
			c.cfg.OnStateChange(ep.url, from, to)
		}
	}
}

func (c *Coordinator) probeLoop() {
	defer close(c.stopped)
	// Jittered probe period: each wait draws from [0.9, 1.1)×ProbeInterval
	// so multiple coordinators fronting one fleet spread their probe
	// storms instead of locking step. Seeded PCG keeps one coordinator's
	// schedule deterministic and testable.
	rng := rand.New(rand.NewPCG(c.cfg.JitterSeed, 0x70726f6265)) // "probe"
	t := time.NewTimer(jitteredInterval(c.cfg.ProbeInterval, rng))
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		case <-c.probeKick:
			if !t.Stop() {
				select {
				case <-t.C:
				default:
				}
			}
		}
		c.probeRound(false)
		t.Reset(jitteredInterval(c.cfg.ProbeInterval, rng))
	}
}

// jitteredInterval draws one probe wait from [0.9, 1.1)×base.
func jitteredInterval(base time.Duration, rng *rand.Rand) time.Duration {
	return time.Duration(float64(base) * (0.9 + 0.2*rng.Float64()))
}

// kickProbe nudges the prober to run a round now (registration wants
// the newcomer probed immediately, not after a probe period). Non-
// blocking: a kick while one is pending is already covered.
func (c *Coordinator) kickProbe() {
	select {
	case c.probeKick <- struct{}{}:
	default:
	}
}

// probeRound probes every endpoint concurrently, updates health states,
// and refreshes the shard map from the latest self-descriptions.
func (c *Coordinator) probeRound(boot bool) {
	var wg sync.WaitGroup
	for _, ep := range c.memberSnapshot() {
		wg.Add(1)
		go func(ep *endpoint) {
			defer wg.Done()
			if c.probeOne(ep) {
				c.noteProbeOK(ep, boot)
			} else {
				c.noteFailure(ep, boot)
			}
		}(ep)
	}
	wg.Wait()
	c.refreshMap()
	c.updateEndpointGauges()
}

// probeOne is a single un-retried health check: GET /readyz (the
// routing gate — a booting store-mode shard answers 503 there and must
// not take traffic), then GET /v1/shardinfo to refresh the endpoint's
// placement, catching base_col movement (sliding-window trims) and
// snapshot generation changes. Uses a direct http.Client, not the
// retrying one: a probe that retries masks exactly the flakiness it
// exists to detect.
func (c *Coordinator) probeOne(ep *endpoint) bool {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
	defer cancel()
	if !c.probeGet(ctx, ep.url+"/readyz", nil) {
		return false
	}
	var info server.ShardInfo
	if !c.probeGet(ctx, ep.url+"/v1/shardinfo", &info) || !info.Ready {
		return false
	}
	ep.setInfo(&info)
	return true
}

func (c *Coordinator) probeGet(ctx context.Context, u string, out any) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return false
	}
	resp, err := c.probeHTTP.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil || resp.StatusCode != http.StatusOK {
		return false
	}
	if out != nil && json.Unmarshal(body, out) != nil {
		return false
	}
	return true
}

// errNoEndpoints reports a range with no live replica — the trigger
// for partial answers (allow) or 503 (deny).
type errNoEndpoints struct{ rng *shardRange }

func (e *errNoEndpoints) Error() string {
	return "no live endpoint for shard " + e.rng.String()
}

// isEndpointFault reports whether a sub-query error indicts the
// endpoint (transport trouble, 5xx, exhausted retries, damaged bodies)
// rather than the query itself (4xx — wrong everywhere, striking the
// endpoint for it would eject healthy shards on client mistakes).
func isEndpointFault(err error) bool {
	var se *client.StatusError
	if errors.As(err, &se) {
		return se.Code >= 500 || se.Code == http.StatusTooManyRequests
	}
	return true
}

// subQuery runs fn against the live endpoints of rng with straggler
// hedging: the first endpoint gets HedgeDelay to answer before the
// same sub-query fires at the next replica; first success wins, a
// failure fails over immediately, and losers are cancelled. Passive
// failures strike the failing endpoint's health. The ctx should
// already carry the sub-query deadline (subDeadline).
func subQuery[T any](c *Coordinator, ctx context.Context, rng *shardRange, fn func(context.Context, *endpoint) (T, error)) (T, error) {
	var zero T
	eps := liveEndpoints(rng, c.rr.Add(1))
	if len(eps) == 0 {
		return zero, &errNoEndpoints{rng: rng}
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type result struct {
		v     T
		err   error
		ep    *endpoint
		hedge bool
	}
	ch := make(chan result, len(eps))
	next, inflight := 0, 0
	launch := func(hedge bool) {
		ep := eps[next]
		next++
		inflight++
		mShardRequests.Add(ep.url, 1)
		ep.inflight.Add(1) // drain accounting; decremented when fn returns
		go func() {
			v, err := fn(cctx, ep)
			ep.inflight.Add(-1)
			ch <- result{v, err, ep, hedge}
		}()
	}
	launch(false)

	var hedgeC <-chan time.Time
	if len(eps) > 1 {
		t := time.NewTimer(c.cfg.HedgeDelay)
		defer t.Stop()
		hedgeC = t.C
	}
	var lastErr error
	for {
		select {
		case r := <-ch:
			inflight--
			if r.err == nil {
				if r.hedge {
					mHedgeWins.Add(1)
				}
				return r.v, nil
			}
			if cctx.Err() != nil {
				// The request deadline (or a won race) cancelled this
				// sub-query; the error says nothing about the endpoint.
				return zero, ctx.Err()
			}
			mShardFailures.Add(r.ep.url, 1)
			if isEndpointFault(r.err) {
				c.noteFailure(r.ep, false)
			} else {
				return zero, r.err // query error: same answer everywhere
			}
			lastErr = r.err
			if next < len(eps) {
				launch(false) // immediate failover, not a hedge
			} else if inflight == 0 {
				return zero, lastErr
			}
		case <-hedgeC:
			hedgeC = nil
			if next < len(eps) {
				mHedges.Add(1)
				launch(true)
			}
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	}
}

// subDeadline derives the context and server-side timeout for one
// sub-query: the remaining request budget minus MergeReserve, so the
// coordinator keeps enough of the budget to merge and answer even when
// a shard eats its whole slice.
func (c *Coordinator) subDeadline(ctx context.Context) (context.Context, context.CancelFunc, time.Duration) {
	dl, ok := ctx.Deadline()
	if !ok {
		sub, cancel := context.WithCancel(ctx)
		return sub, cancel, 0
	}
	budget := time.Until(dl) - c.cfg.MergeReserve
	if budget < time.Millisecond {
		budget = time.Millisecond
	}
	sub, cancel := context.WithTimeout(ctx, budget)
	return sub, cancel, budget
}
