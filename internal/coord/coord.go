// Package coord is the scatter-gather layer over a fleet of
// internal/server shards: one table sharded along the time (column)
// axis, each shard serving its own column slice with its own sketch
// pool. The coordinator owns the shard map — which global column range
// lives where, learned and refreshed from /v1/shardinfo — fans queries
// out over the shards' sketch sub-query endpoints, and merges the
// answers:
//
//   - distance: per-shard rectangle sketches, differenced under the
//     shared O(k) estimator (equal to an unsharded server for
//     shard-contained rectangles up to float accumulation order,
//     because pool sketch randomness is position-independent);
//   - nearest: per-shard best tiles, merged by (distance, global tile
//     index) — the within-shard lowest-local-index tie-break is also
//     the lowest-global-index tie-break, so the merge reproduces the
//     unsharded argmin;
//   - assign: per-shard best medoids (clusterings are shard-local).
//
// Robustness is the point of the layer, not an afterthought: shards
// are actively probed and ejected after consecutive failures, re-enter
// through probation, stragglers are hedged to a replica, every
// sub-query gets a deadline carved from the request budget, and when a
// shard is unreachable the caller chooses — partial=allow answers from
// the shards that remain, honestly tagged with the column ranges that
// are missing; partial=deny turns any gap into a clean 503.
package coord

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/core"
)

// State is an endpoint's health as seen by the coordinator's prober.
type State int

const (
	// StateHealthy endpoints receive traffic and are first choice.
	StateHealthy State = iota
	// StateProbation endpoints passed ReadmitAfter probes after death
	// and receive traffic again, but one failure sends them straight
	// back to dead (no EjectAfter grace).
	StateProbation
	// StateDead endpoints receive no traffic until they pass
	// ReadmitAfter consecutive probes.
	StateDead
)

func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateProbation:
		return "probation"
	default:
		return "dead"
	}
}

// Config tunes the coordinator. Zero values get defaults from New.
type Config struct {
	// Endpoints are the shard base URLs (e.g. "http://127.0.0.1:7001").
	// Two endpoints reporting the same column range form a replica
	// group: load spreads across them and stragglers hedge to the next.
	Endpoints []string

	// PartialDeny makes partial answers opt-in instead of opt-out: by
	// default (false) a query touching an unreachable shard still
	// answers from the reachable ones, tagged partial; with PartialDeny
	// (or per-query partial=deny) it fails with 503 + Retry-After.
	PartialDeny bool

	// ProbeInterval is the active health-probe period (default 250ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip (default ProbeInterval).
	ProbeTimeout time.Duration
	// EjectAfter ejects a healthy endpoint after this many consecutive
	// failures, probe or passive (default 3).
	EjectAfter int
	// ReadmitAfter re-admits a dead endpoint into probation after this
	// many consecutive probe successes, and promotes probation to
	// healthy after as many more (default 2).
	ReadmitAfter int

	// HedgeDelay is how long a sub-query waits before hedging to the
	// next endpoint of the same replica group (default 30ms). Hedging
	// never fires within a single-endpoint group: re-sending the same
	// query to the same struggling process doubles its load for zero
	// information.
	HedgeDelay time.Duration
	// MergeReserve is the slice of the request budget kept back from
	// sub-query deadlines for the coordinator's own merge work
	// (default 10ms).
	MergeReserve time.Duration

	// DefaultTimeout/MaxTimeout mirror the server's request-budget
	// policy (defaults 2s / 30s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// RetryAfter is the hint sent with 503 answers (default 1s).
	RetryAfter time.Duration

	// SubAttempts bounds the retrying client's tries per sub-query
	// (default 2: one retry, then the hedging/failover machinery takes
	// over — deep per-endpoint retry loops and cross-endpoint failover
	// multiply into retry storms).
	SubAttempts int

	// JitterSeed seeds the probe-period jitter stream: every wait
	// between probe rounds draws from [0.9, 1.1)×ProbeInterval, so
	// multiple coordinators fronting one fleet spread their probe storms
	// instead of synchronizing them. Seeded (PCG), so one coordinator's
	// schedule is still fully deterministic; 0 is a valid seed.
	JitterSeed uint64

	// OnStateChange observes endpoint health transitions (test hook;
	// called from the prober goroutine and the serving path).
	OnStateChange func(endpoint string, from, to State)
	// Logf receives operational log lines; nil is silent.
	Logf func(format string, args ...any)
}

func (c *Config) setDefaults() {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = c.ProbeInterval
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 3
	}
	if c.ReadmitAfter <= 0 {
		c.ReadmitAfter = 2
	}
	if c.HedgeDelay <= 0 {
		c.HedgeDelay = 30 * time.Millisecond
	}
	if c.MergeReserve <= 0 {
		c.MergeReserve = 10 * time.Millisecond
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.SubAttempts <= 0 {
		c.SubAttempts = 2
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// shardRange is one column slice of the global table and the replica
// group serving it.
type shardRange struct {
	baseCol, cols int
	endpoints     []*endpoint // discovery order; selection rotates
}

func (r *shardRange) String() string {
	return fmt.Sprintf("cols %d-%d", r.baseCol, r.baseCol+r.cols)
}

// contains reports whether the global column span [c0, c1) lies
// entirely inside this range.
func (r *shardRange) contains(c0, c1 int) bool {
	return c0 >= r.baseCol && c1 <= r.baseCol+r.cols
}

// shardMap is the immutable routing state one request resolves once:
// the global geometry, the merge-compatible sketch parameters, and the
// column ranges in ascending order. The prober and the membership ops
// swap whole maps atomically, exactly like the server swaps snapshots.
type shardMap struct {
	// epoch stamps this routing state: it increments every time the
	// swapped-in map differs from its predecessor (membership change,
	// BaseCol move, replica set change) and is echoed on every answer
	// in the X-Tabmine-Epoch header, so a drill under live traffic can
	// prove a cutover happened and a client can correlate an answer
	// with the fleet state that produced it.
	epoch int64

	rows, cols         int // global table dims
	tileRows, tileCols int
	clusters           int // min across shards; 0 disables /v1/assign

	p         float64
	k         int
	seed      uint64
	estimator core.Estimator
	sdist     func(a, b []float64) float64 // O(k) estimator (core.NewSketchDist)

	ranges []*shardRange // ascending baseCol
	// complete: ranges tile [0, cols) contiguously from 0. Incomplete
	// maps still serve queries that fit the known ranges; /readyz gates
	// on completeness.
	complete bool
	// gaps are the column spans of [0, cols) no range covers. A dead
	// endpoint keeps its last-known placement, so ordinary outages never
	// create gaps — deregistering a band's only endpoint does. Gap
	// columns must surface as Missing tags (or deny→503), never as a
	// silently narrowed answer: that would be the unflagged-wrong
	// failure mode this layer exists to rule out.
	gaps [][2]int
}

func (m *shardMap) gridRows() int { return m.rows / m.tileRows }
func (m *shardMap) gridCols() int { return m.cols / m.tileCols }

// rangeIdxFor returns the index of the range containing global column
// span [c0, c1), or -1 when no single range contains it.
func (m *shardMap) rangeIdxFor(c0, c1 int) int {
	for i, r := range m.ranges {
		if r.contains(c0, c1) {
			return i
		}
	}
	return -1
}

// inGap reports whether [c0, c1) touches a column span no known shard
// covers — the difference between "spans two shards" (a client error,
// 400) and "covers columns the fleet lost" (an availability problem,
// 503 + Retry-After: registering a replacement can fix it).
func (m *shardMap) inGap(c0, c1 int) bool {
	for _, g := range m.gaps {
		if c0 < g[1] && c1 > g[0] {
			return true
		}
	}
	return false
}

// Coordinator fans queries out over the shard fleet and merges the
// answers. Safe for concurrent use.
type Coordinator struct {
	cfg Config

	// mu guards endpoints (the membership list) and serializes shard-map
	// rebuilds; the request path never takes it — requests resolve the
	// atomic map pointer once and run against that immutable state.
	mu        sync.Mutex
	endpoints []*endpoint

	mp    atomic.Pointer[shardMap]
	epoch atomic.Int64  // allocator for shardMap.epoch; monotone
	rr    atomic.Uint64 // round-robin seed for replica selection

	probeHTTP  *http.Client
	ingestHTTP *http.Client // non-retrying ingest proxy transport
	probeKick  chan struct{}
	stop       chan struct{}
	stopped    chan struct{}

	mux *http.ServeMux
	hs  *http.Server
}

// New builds a Coordinator over cfg.Endpoints, runs one synchronous
// probe round (so endpoints that are up serve immediately, without
// waiting out a probe period), builds the initial shard map from
// whatever answered, and starts the prober. An unreachable fleet is
// not an error — the coordinator starts in the not-ready state and
// admits shards as probes succeed. The fleet is mutable at runtime:
// see Register, Deregister, and SetEndpoints.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Endpoints) == 0 {
		return nil, fmt.Errorf("coord: at least one shard endpoint required")
	}
	cfg.setDefaults()
	c := &Coordinator{
		cfg:        cfg,
		probeHTTP:  &http.Client{Timeout: cfg.ProbeTimeout},
		ingestHTTP: &http.Client{},
		probeKick:  make(chan struct{}, 1),
		stop:       make(chan struct{}),
		stopped:    make(chan struct{}),
	}
	seen := map[string]bool{}
	for _, u := range cfg.Endpoints {
		if seen[u] {
			return nil, fmt.Errorf("coord: duplicate endpoint %q", u)
		}
		seen[u] = true
		ep, err := c.newEndpoint(u)
		if err != nil {
			return nil, err
		}
		c.endpoints = append(c.endpoints, ep)
	}
	c.probeRound(true)
	c.buildMux()
	go c.probeLoop()
	return c, nil
}

// newEndpoint builds the per-endpoint state (retrying sub-query client,
// dead-until-probed health) shared by New and Register.
func (c *Coordinator) newEndpoint(u string) (*endpoint, error) {
	cl, err := client.New(client.Config{
		BaseURL:     u,
		MaxAttempts: c.cfg.SubAttempts,
		BaseDelay:   5 * time.Millisecond,
		MaxDelay:    100 * time.Millisecond,
		Budget:      c.cfg.MaxTimeout,
		Logf:        c.cfg.Logf,
	})
	if err != nil {
		return nil, fmt.Errorf("coord: endpoint %q: %w", u, err)
	}
	ep := &endpoint{url: u, cl: cl}
	ep.state = StateDead // until the first probe says otherwise
	return ep, nil
}

// memberSnapshot copies the membership list for lock-free iteration.
func (c *Coordinator) memberSnapshot() []*endpoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*endpoint(nil), c.endpoints...)
}

// Membership errors, distinguishable by the admin HTTP layer.
var (
	ErrDuplicateEndpoint = errors.New("endpoint already registered")
	ErrUnknownEndpoint   = errors.New("endpoint not registered")
)

// normalizeEndpoint canonicalizes a shard base URL the way the -shards
// flag parsing does (trailing slash stripped), and rejects anything
// that is not an absolute http(s) URL — an admin typo must fail the
// register call, not sit in the fleet as a permanently dead member.
func normalizeEndpoint(u string) (string, error) {
	u = strings.TrimRight(strings.TrimSpace(u), "/")
	pu, err := url.Parse(u)
	if err != nil || (pu.Scheme != "http" && pu.Scheme != "https") || pu.Host == "" {
		return "", fmt.Errorf("coord: bad endpoint %q (want http[s]://host:port)", u)
	}
	return u, nil
}

// Register adds a shard endpoint to the fleet at runtime. The endpoint
// starts dead and earns traffic through the same probe/probation
// machine every endpoint uses — registration is an invitation, not an
// admission — so a replacement shard is validated (reachable, ready,
// merge-compatible) before it ever serves a sub-query. A probe round is
// kicked immediately; the returned epoch is the shard map's current
// epoch (it advances when the newcomer actually enters the map).
func (c *Coordinator) Register(u string) (epoch int64, err error) {
	u, err = normalizeEndpoint(u)
	if err != nil {
		return c.epoch.Load(), err
	}
	c.mu.Lock()
	for _, ep := range c.endpoints {
		if ep.url == u {
			c.mu.Unlock()
			return c.epoch.Load(), fmt.Errorf("%w: %s", ErrDuplicateEndpoint, u)
		}
	}
	ep, err := c.newEndpoint(u)
	if err != nil {
		c.mu.Unlock()
		return c.epoch.Load(), err
	}
	c.endpoints = append(c.endpoints, ep)
	c.refreshMapLocked()
	c.mu.Unlock()
	mRegisters.Add(1)
	c.updateEndpointGauges()
	c.cfg.Logf("coord: registered endpoint %s (dead until probed)", u)
	c.kickProbe()
	return c.epoch.Load(), nil
}

// Deregister removes endpoint u from the fleet. The removal is fenced
// before it is drained: the endpoint's draining flag flips first (so
// requests holding an already-resolved map stop selecting it for NEW
// sub-queries), then the shard map rebuilds without it at a bumped
// epoch. With drain, Deregister then blocks until every in-flight
// sub-query against the endpoint has finished (or ctx expires — the
// endpoint stays deregistered either way; only the wait fails). The
// caller may tear the shard process down once Deregister returns nil.
func (c *Coordinator) Deregister(ctx context.Context, u string, drain bool) (epoch int64, err error) {
	u, err = normalizeEndpoint(u)
	if err != nil {
		return c.epoch.Load(), err
	}
	c.mu.Lock()
	idx := -1
	for i, ep := range c.endpoints {
		if ep.url == u {
			idx = i
			break
		}
	}
	if idx < 0 {
		c.mu.Unlock()
		return c.epoch.Load(), fmt.Errorf("%w: %s", ErrUnknownEndpoint, u)
	}
	ep := c.endpoints[idx]
	ep.draining.Store(true) // fence: no new sub-queries, even from maps resolved before the swap
	c.endpoints = append(c.endpoints[:idx:idx], c.endpoints[idx+1:]...)
	c.refreshMapLocked()
	c.mu.Unlock()
	mDeregisters.Add(1)
	c.updateEndpointGauges()
	epoch = c.epoch.Load()
	if !drain {
		c.cfg.Logf("coord: deregistered endpoint %s (no drain)", u)
		return epoch, nil
	}
	if err := c.awaitDrain(ctx, ep); err != nil {
		c.cfg.Logf("coord: deregistered endpoint %s at epoch %d, drain incomplete: %v", u, epoch, err)
		return epoch, err
	}
	c.cfg.Logf("coord: deregistered endpoint %s at epoch %d (drained)", u, epoch)
	return epoch, nil
}

// awaitDrain waits until ep has no in-flight sub-queries. It requires
// two consecutive zero observations one tick apart: a sub-query that
// resolved the pre-fence map but had not yet incremented the in-flight
// count cannot slip between a single check and the caller tearing the
// shard down.
func (c *Coordinator) awaitDrain(ctx context.Context, ep *endpoint) error {
	zeros := 0
	t := time.NewTicker(time.Millisecond)
	defer t.Stop()
	for {
		if ep.inflight.Load() == 0 {
			if zeros++; zeros >= 2 {
				return nil
			}
		} else {
			zeros = 0
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("drain of %s: %d sub-queries still in flight: %w",
				ep.url, ep.inflight.Load(), ctx.Err())
		case <-t.C:
		}
	}
}

// SetEndpoints reconciles the fleet against urls — the SIGHUP "-shards
// re-read" path: URLs not yet in the fleet register, members not in
// urls deregister. Removed endpoints are fenced immediately but drained
// in the background (bounded by MaxTimeout): a signal handler has no
// caller to block on the wait. An empty or unparsable list changes
// nothing and errors — a truncated shards file must not empty a
// serving fleet.
func (c *Coordinator) SetEndpoints(urls []string) (added, removed []string, err error) {
	want := map[string]bool{}
	for _, u := range urls {
		nu, nerr := normalizeEndpoint(u)
		if nerr != nil {
			return nil, nil, nerr
		}
		want[nu] = true
	}
	if len(want) == 0 {
		return nil, nil, fmt.Errorf("coord: refusing to deregister every endpoint")
	}
	have := map[string]bool{}
	for _, ep := range c.memberSnapshot() {
		have[ep.url] = true
	}
	for u := range want {
		if !have[u] {
			if _, rerr := c.Register(u); rerr != nil {
				return added, removed, rerr
			}
			added = append(added, u)
		}
	}
	for u := range have {
		if !want[u] {
			removed = append(removed, u)
			go func(u string) {
				ctx, cancel := context.WithTimeout(context.Background(), c.cfg.MaxTimeout)
				defer cancel()
				c.Deregister(ctx, u, true) //nolint:errcheck // logged inside
			}(u)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	return added, removed, nil
}

// Epoch reports the current shard-map epoch (0 before any map).
func (c *Coordinator) Epoch() int64 { return c.epoch.Load() }

// updateEndpointGauges recounts the fleet into the
// tabmine_coord_endpoints{healthy,probation,dead} gauges.
func (c *Coordinator) updateEndpointGauges() {
	var healthy, probation, dead int64
	for _, ep := range c.memberSnapshot() {
		switch ep.currentState() {
		case StateHealthy:
			healthy++
		case StateProbation:
			probation++
		default:
			dead++
		}
	}
	gHealthy.Set(healthy)
	gProbation.Set(probation)
	gDead.Set(dead)
}

// Close stops the prober. In-flight requests finish normally.
func (c *Coordinator) Close() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
		<-c.stopped
	}
}

// Handler exposes the route table (for tests via httptest).
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Serve accepts connections on l until Shutdown.
func (c *Coordinator) Serve(l net.Listener) error { return c.hs.Serve(l) }

// Shutdown drains the HTTP server and stops the prober.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	err := c.hs.Shutdown(ctx)
	c.Close()
	return err
}

// Map returns the current shard map (nil before any shard answered).
func (c *Coordinator) currentMap() *shardMap { return c.mp.Load() }

// Ready reports whether the shard map covers the whole table and every
// range has at least one live endpoint.
func (c *Coordinator) Ready() bool {
	m := c.currentMap()
	if m == nil || !m.complete {
		return false
	}
	for _, r := range m.ranges {
		if len(liveEndpoints(r, 0)) == 0 {
			return false
		}
	}
	return true
}

// refreshMap rebuilds the shard map from the endpoints' latest
// /v1/shardinfo answers. Endpoints that never answered are left out;
// endpoints that answered once keep their last-known placement even
// while dead, so a dead shard's column range is still KNOWN — that is
// what lets a partial answer name exactly which columns are missing.
// An inconsistent fleet (mismatched sketch parameters or geometry)
// keeps the previous map and logs, rather than serving garbage merges.
func (c *Coordinator) refreshMap() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.refreshMapLocked()
}

// refreshMapLocked is refreshMap's body; c.mu must be held so that a
// membership change and its map rebuild are one atomic step.
func (c *Coordinator) refreshMapLocked() {
	type placed struct {
		ep   *endpoint
		info shardInfoSnapshot
	}
	var ps []placed
	for _, ep := range c.endpoints {
		if info, ok := ep.lastInfo(); ok {
			ps = append(ps, placed{ep, info})
		}
	}
	if len(ps) == 0 {
		return
	}
	first := ps[0].info
	est, err := core.ParseEstimator(first.Estimator)
	if err != nil {
		c.cfg.Logf("coord: shard %s: %v", ps[0].ep.url, err)
		return
	}
	m := &shardMap{
		rows: first.Rows, tileRows: first.TileRows, tileCols: first.TileCols,
		p: first.P, k: first.K, seed: first.Seed, estimator: est,
		clusters: first.Clusters,
	}
	groups := map[[2]int]*shardRange{}
	for _, p := range ps {
		in := p.info
		if in.Rows != m.rows || in.TileRows != m.tileRows || in.TileCols != m.tileCols ||
			in.P != m.p || in.K != m.k || in.Seed != m.seed || in.Estimator != first.Estimator {
			c.cfg.Logf("coord: shard %s is not merge-compatible with %s (rows/tile/p/k/seed/estimator mismatch); keeping previous map",
				p.ep.url, ps[0].ep.url)
			return
		}
		if in.BaseCol%m.tileCols != 0 {
			c.cfg.Logf("coord: shard %s base_col %d is not tile-aligned (tile_cols %d); keeping previous map",
				p.ep.url, in.BaseCol, m.tileCols)
			return
		}
		if in.Clusters < m.clusters {
			m.clusters = in.Clusters
		}
		key := [2]int{in.BaseCol, in.Cols}
		rng := groups[key]
		if rng == nil {
			rng = &shardRange{baseCol: in.BaseCol, cols: in.Cols}
			groups[key] = rng
			m.ranges = append(m.ranges, rng)
		}
		rng.endpoints = append(rng.endpoints, p.ep)
		if end := in.BaseCol + in.Cols; end > m.cols {
			m.cols = end
		}
	}
	sort.Slice(m.ranges, func(i, j int) bool { return m.ranges[i].baseCol < m.ranges[j].baseCol })
	m.complete = true
	next := 0
	for _, r := range m.ranges {
		if r.baseCol != next {
			m.complete = false
			if r.baseCol > next {
				m.gaps = append(m.gaps, [2]int{next, r.baseCol})
			}
		}
		if end := r.baseCol + r.cols; end > next {
			next = end
		}
	}
	if next != m.cols {
		m.complete = false
		if next < m.cols {
			m.gaps = append(m.gaps, [2]int{next, m.cols})
		}
	}
	m.sdist, err = core.NewSketchDist(m.p, m.k, m.estimator)
	if err != nil {
		c.cfg.Logf("coord: building estimator: %v", err)
		return
	}
	old := c.mp.Load()
	if old != nil && sameMap(old, m) {
		// Same routing state: keep the old map (and its estimator
		// scratch pool) instead of churning pointers every probe round.
		return
	}
	m.epoch = c.epoch.Add(1)
	c.mp.Store(m)
	mEpoch.Set(m.epoch)
	mMapReloads.Add(1)
	c.cfg.Logf("coord: shard map epoch %d: %d ranges over %dx%d cols, complete=%v",
		m.epoch, len(m.ranges), m.rows, m.cols, m.complete)
}

func sameMap(a, b *shardMap) bool {
	if a.rows != b.rows || a.cols != b.cols || a.clusters != b.clusters ||
		a.complete != b.complete || len(a.ranges) != len(b.ranges) {
		return false
	}
	for i, r := range a.ranges {
		s := b.ranges[i]
		if r.baseCol != s.baseCol || r.cols != s.cols || len(r.endpoints) != len(s.endpoints) {
			return false
		}
		for j := range r.endpoints {
			if r.endpoints[j] != s.endpoints[j] {
				return false
			}
		}
	}
	return true
}

// liveEndpoints returns the range's selectable endpoints: healthy ones
// first (rotated by rot for load spread), probation ones after — they
// take traffic, but only as fallback while a healthy replica exists.
// Draining endpoints are never selectable: the flag is the deregister
// fence, and it must hold even for requests that resolved a shard map
// from before the membership change.
func liveEndpoints(r *shardRange, rot uint64) []*endpoint {
	var healthy, probation []*endpoint
	for _, ep := range r.endpoints {
		if ep.draining.Load() {
			continue
		}
		switch ep.currentState() {
		case StateHealthy:
			healthy = append(healthy, ep)
		case StateProbation:
			probation = append(probation, ep)
		}
	}
	if n := len(healthy); n > 1 {
		k := int(rot % uint64(n))
		healthy = append(healthy[k:len(healthy):len(healthy)], healthy[:k]...)
	}
	return append(healthy, probation...)
}
